package gamma

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/decwi/decwi/internal/rng"
	"github.com/decwi/decwi/internal/rng/mt"
	"github.com/decwi/decwi/internal/rng/normal"
)

func TestNewParamsValidation(t *testing.T) {
	for _, bad := range []struct{ a, b float64 }{
		{0, 1}, {-1, 1}, {1, 0}, {1, -2}, {math.NaN(), 1}, {1, math.NaN()},
	} {
		if _, err := NewParams(bad.a, bad.b); err == nil {
			t.Errorf("NewParams(%g,%g) should fail", bad.a, bad.b)
		}
	}
	p, err := NewParams(2.5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if p.AlphaFlag {
		t.Error("alpha=2.5 must not set AlphaFlag")
	}
	if math.Abs(p.d-(2.5-1.0/3)) > 1e-15 {
		t.Errorf("d=%g", p.d)
	}
}

func TestFromVariance(t *testing.T) {
	p := MustFromVariance(1.39)
	if math.Abs(p.Alpha-1/1.39) > 1e-15 || math.Abs(p.Scale-1.39) > 1e-15 {
		t.Fatalf("sector mapping wrong: α=%g β=%g", p.Alpha, p.Scale)
	}
	if !p.AlphaFlag {
		t.Error("v=1.39 gives α<1, AlphaFlag must be set")
	}
	mean, variance := p.TheoreticalMoments()
	if math.Abs(mean-1) > 1e-12 || math.Abs(variance-1.39) > 1e-12 {
		t.Errorf("moments E=%g Var=%g", mean, variance)
	}
	if _, err := FromVariance(0); err == nil {
		t.Error("v=0 should fail")
	}
	if _, err := FromVariance(-3); err == nil {
		t.Error("v<0 should fail")
	}
}

// sampleMoments returns mean and variance of a float32 sample.
func sampleMoments(xs []float32) (mean, variance float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += float64(x)
	}
	mean /= n
	for _, x := range xs {
		d := float64(x) - mean
		variance += d * d
	}
	return mean, variance / n
}

// TestGeneratorMoments checks E=1, Var=v for the full pipelined generator
// across all transforms, both MT parameter sets, and α on both sides of 1.
func TestGeneratorMoments(t *testing.T) {
	const n = 120000
	for _, v := range []float64{0.4, 1.39} { // α ≈ 2.5 and α ≈ 0.72
		for _, tf := range []normal.Kind{normal.MarsagliaBray, normal.ICDFFPGA, normal.ICDFCUDA} {
			for _, mtp := range []struct {
				name string
				p    mt.Params
			}{{"MT19937", mt.MT19937Params}, {"MT521", mt.MT521Params}} {
				v, tf, mtp := v, tf, mtp
				t.Run(tf.String()+"/"+mtp.name, func(t *testing.T) {
					t.Parallel()
					g := NewGenerator(tf, mtp.p, MustFromVariance(v), 42)
					xs := g.Fill(nil, n)
					mean, variance := sampleMoments(xs)
					if math.Abs(mean-1) > 0.02 {
						t.Errorf("v=%g: mean %f, want 1", v, mean)
					}
					if math.Abs(variance-v)/v > 0.05 {
						t.Errorf("v=%g: variance %f", v, variance)
					}
				})
			}
		}
	}
}

// TestGeneratorPositivity: gamma variates are strictly positive and finite.
func TestGeneratorPositivity(t *testing.T) {
	g := NewGenerator(normal.MarsagliaBray, mt.MT521Params, MustFromVariance(1.39), 7)
	for i := 0; i < 50000; i++ {
		x := g.Next()
		if !(x > 0) || !rng.IsFinite32(x) {
			t.Fatalf("sample %d: invalid gamma value %g", i, x)
		}
	}
}

// TestRejectionRateMarsagliaBray reproduces the Section IV-E numbers: the
// combined rate at v=1.39 should sit near the paper's 30.3 %, and the
// dominant term is the polar method's 1−π/4 per-cycle rejection.
func TestRejectionRateMarsagliaBray(t *testing.T) {
	r := MeasureRejectionRate(normal.MarsagliaBray, mt.MT19937Params, 1.39, 200000, 3)
	if r < 0.25 || r < 0.0 || r > 0.40 {
		t.Fatalf("combined Marsaglia-Bray rejection rate %f outside the plausible band around the paper's 0.303", r)
	}
}

// TestRejectionRateICDF: the ICDF configs reject only at the
// Marsaglia-Tsang stage; the rate must be far below the polar rate
// (paper: 7.4 % vs 30.3 %).
func TestRejectionRateICDF(t *testing.T) {
	r := MeasureRejectionRate(normal.ICDFFPGA, mt.MT19937Params, 1.39, 200000, 3)
	if r < 0 || r > 0.12 {
		t.Fatalf("ICDF combined rejection rate %f outside plausible band", r)
	}
	rb := MeasureRejectionRate(normal.MarsagliaBray, mt.MT19937Params, 1.39, 200000, 3)
	if r >= rb {
		t.Fatalf("ICDF rate %f should be well below Marsaglia-Bray rate %f", r, rb)
	}
}

// TestRejectionRateMonotoneInVariance follows the paper's v sweep
// (27.8 % at v=0.1 to 33.7 % at v=100 for M-Bray): the rate must grow
// with the sector variance.
func TestRejectionRateMonotoneInVariance(t *testing.T) {
	r01 := MeasureRejectionRate(normal.MarsagliaBray, mt.MT521Params, 0.1, 120000, 5)
	r100 := MeasureRejectionRate(normal.MarsagliaBray, mt.MT521Params, 100, 120000, 5)
	if r01 >= r100 {
		t.Fatalf("rejection rate should grow with variance: r(0.1)=%f, r(100)=%f", r01, r100)
	}
}

// TestCycleAccounting: Cycles = Accepted·(1+r) by definition, and Fill(n)
// accepts exactly n.
func TestCycleAccounting(t *testing.T) {
	g := NewGenerator(normal.ICDFCUDA, mt.MT521Params, MustFromVariance(1.39), 1)
	g.Fill(nil, 10000)
	if g.Accepted() != 10000 {
		t.Fatalf("accepted %d, want 10000", g.Accepted())
	}
	if g.Cycles() < g.Accepted() {
		t.Fatal("cycles < accepted is impossible")
	}
	r := g.RejectionRate()
	recon := float64(g.Accepted()) * (1 + r)
	if math.Abs(recon-float64(g.Cycles())) > 1 {
		t.Fatalf("cycle identity broken: %f vs %d", recon, g.Cycles())
	}
}

// TestGatingPreservesUniformStream is the paper's Section II-E
// correctness requirement: the gated MT1/MT2 streams must consume words
// without skipping. We verify by replaying the generator and tracking the
// exact words consumed by each logical stream.
func TestGatingPreservesUniformStream(t *testing.T) {
	seed := uint64(99)
	g := NewGenerator(normal.MarsagliaBray, mt.MT521Params, MustFromVariance(1.39), seed)

	// Independent copies of the raw streams, advanced only on accept events.
	seeds := rng.StreamSeeds(seed, 4)
	mt1ref := mt.New(mt.MT521Params, seeds[2])
	mt2ref := mt.New(mt.MT521Params, seeds[3])

	for i := 0; i < 5000; i++ {
		// Reconstruct this cycle's expected words *before* stepping.
		expectU1 := rng.U32ToFloatOpen(mt1ref.Peek())
		expectU2 := rng.U32ToFloatOpen(mt2ref.Peek())
		res := g.CycleStep()
		_ = expectU2
		if res.NormalValid {
			mt1ref.Advance()
		}
		if res.Valid {
			mt2ref.Advance()
			// On valid cycles the candidate was tested against the
			// current u1 word; recompute to confirm no slippage.
			_ = expectU1
		}
	}
	// After replay, the reference streams and the generator's internal
	// streams must be positioned identically: their next words agree.
	if g.mt1.Peek() != mt1ref.Peek() {
		t.Fatal("MT1 stream position diverged from gating contract")
	}
	if g.mt2.Peek() != mt2ref.Peek() {
		t.Fatal("MT2 stream position diverged from gating contract")
	}
}

// TestCandidateFinishProperties: candidates are deterministic; accepted
// dv values are positive; Finish scales correctly for α>1 (no correction).
func TestCandidateFinishProperties(t *testing.T) {
	p, _ := NewParams(2.0, 3.0) // α>1: Finish must be identity·β
	f := func(n0 float32, u1raw uint32) bool {
		if !rng.IsFinite32(n0) {
			return true
		}
		u1 := rng.U32ToFloatOpen(u1raw)
		dv1, ok1 := p.Candidate(n0, u1)
		dv2, ok2 := p.Candidate(n0, u1)
		if dv1 != dv2 || ok1 != ok2 {
			return false
		}
		if ok1 && dv1 <= 0 {
			return false
		}
		if ok1 {
			got := p.Finish(dv1, 0.5)
			want := float32(dv1 * 3.0)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestReferenceSamplersMoments validates the oracles themselves on exact
// moments, for α on both sides of 1.
func TestReferenceSamplersMoments(t *testing.T) {
	const n = 150000
	for _, v := range []float64{0.4, 1.39} {
		p := MustFromVariance(v)
		ref := NewReferenceSampler(p, mt.NewMT19937(31))
		xs := ref.Fill(nil, n)
		mean, variance := sampleMoments(xs)
		if math.Abs(mean-1) > 0.02 {
			t.Errorf("v=%g (%s): mean %f", v, ref.Algorithm(), mean)
		}
		if math.Abs(variance-v)/v > 0.06 {
			t.Errorf("v=%g (%s): variance %f", v, ref.Algorithm(), variance)
		}
	}
}

// TestAhrensDieterGS validates the second oracle independently.
func TestAhrensDieterGS(t *testing.T) {
	u := rng.Float64Source{Src: mt.NewMT19937(8)}
	alpha := 0.72
	const n = 150000
	var mean, m2 float64
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = AhrensDieterGS(u, alpha)
		mean += xs[i]
	}
	mean /= n
	for _, x := range xs {
		d := x - mean
		m2 += d * d
	}
	m2 /= n
	if math.Abs(mean-alpha) > 0.02 {
		t.Errorf("GS mean %f, want %f", mean, alpha)
	}
	if math.Abs(m2-alpha)/alpha > 0.06 {
		t.Errorf("GS variance %f, want %f", m2, alpha)
	}
}

// TestGeneratorAgainstReferenceQuantiles compares empirical quantiles of
// the pipelined generator and the independent oracle — a distribution-free
// two-sample sanity check ahead of the full KS test in the stats package.
func TestGeneratorAgainstReferenceQuantiles(t *testing.T) {
	const n = 100000
	p := MustFromVariance(1.39)
	g := NewGenerator(normal.MarsagliaBray, mt.MT19937Params, p, 17)
	ref := NewReferenceSampler(p, mt.NewMT19937(18))

	a := g.Fill(nil, n)
	b := ref.Fill(nil, n)
	sortF32(a)
	sortF32(b)
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		i := int(q * float64(n-1))
		qa, qb := float64(a[i]), float64(b[i])
		den := math.Max(0.05, math.Abs(qb))
		if math.Abs(qa-qb)/den > 0.06 {
			t.Errorf("quantile %.2f: generator %f vs reference %f", q, qa, qb)
		}
	}
}

func sortF32(xs []float32) {
	// insertion-free: simple quicksort via stdlib
	// (kept local to avoid importing sort in the hot test path)
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		if lo >= hi {
			return
		}
		pvt := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pvt {
				i++
			}
			for xs[j] > pvt {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		qs(lo, j)
		qs(i, hi)
	}
	qs(0, len(xs)-1)
}

func BenchmarkGeneratorNext(b *testing.B) {
	for _, tf := range []normal.Kind{normal.MarsagliaBray, normal.ICDFFPGA, normal.ICDFCUDA} {
		b.Run(tf.String(), func(b *testing.B) {
			g := NewGenerator(tf, mt.MT19937Params, MustFromVariance(1.39), 1)
			var sink float32
			for i := 0; i < b.N; i++ {
				sink += g.Next()
			}
			_ = sink
		})
	}
}

func BenchmarkCycleStep(b *testing.B) {
	g := NewGenerator(normal.MarsagliaBray, mt.MT521Params, MustFromVariance(1.39), 1)
	for i := 0; i < b.N; i++ {
		g.CycleStep()
	}
}

func BenchmarkReferenceSampler(b *testing.B) {
	ref := NewReferenceSampler(MustFromVariance(1.39), mt.NewMT19937(1))
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += ref.Next()
	}
	_ = sink
}

// TestReseedMatchesNew: a pooled generator reseeded in place must be
// indistinguishable from a freshly constructed one — the invariant the
// engine's chunk-level generator pool rests on. Checked across
// transforms, twister variants and a state-dirtying warm run.
func TestReseedMatchesNew(t *testing.T) {
	for _, tf := range []normal.Kind{normal.MarsagliaBray, normal.ICDFFPGA, normal.ICDFCUDA, normal.Ziggurat} {
		for _, mtp := range []mt.Params{mt.MT19937Params, mt.MT521Params} {
			p := MustFromVariance(1.39)
			fresh := NewGenerator(tf, mtp, p, 42)
			dirty := NewGenerator(tf, mtp, MustFromVariance(0.5), 7)
			for i := 0; i < 1000; i++ { // walk the state away from the seed point
				dirty.CycleStep()
			}
			dirty.SetParams(p)
			dirty.Reseed(42)
			if c, a, nv := dirty.Cycles(), dirty.Accepted(), dirty.NormalValid(); c != 0 || a != 0 || nv != 0 {
				t.Fatalf("%v: counters not reset: cycles=%d accepted=%d normalValid=%d", tf, c, a, nv)
			}
			for i := 0; i < 2000; i++ {
				want, got := fresh.CycleStep(), dirty.CycleStep()
				if want != got {
					t.Fatalf("%v/MT%d: cycle %d: reseeded generator diverged: %+v vs %+v", tf, mtp.N, i, got, want)
				}
			}
		}
	}
}
