package flight

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock so retention and pin-threshold
// tests are deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestRecorder(ring, pin int, slow time.Duration) (*Recorder, *fakeClock) {
	r := New(ring, pin, slow)
	clk := newFakeClock()
	r.now = clk.now
	return r, clk
}

// checkListing round-trips Jobs() through JSON and the validator.
func checkListing(t *testing.T, r *Recorder) JobsJSON {
	t.Helper()
	jobs := r.Jobs()
	body, err := json.Marshal(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckJobsJSON(body); err != nil {
		t.Fatalf("CheckJobsJSON: %v\n%s", err, body)
	}
	return jobs
}

// checkTrace round-trips one trace through JSON and the validator.
func checkTrace(t *testing.T, r *Recorder, id string) TraceJSON {
	t.Helper()
	tj, ok := r.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained", id)
	}
	body, err := json.Marshal(tj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckTraceJSON(body); err != nil {
		t.Fatalf("CheckTraceJSON(%s): %v\n%s", id, err, body)
	}
	return tj
}

func TestFlightSpanTree(t *testing.T) {
	r, clk := newTestRecorder(8, 4, time.Hour)
	tr := r.Start("", "generate")
	if tr.TraceID() == "" {
		t.Fatal("minted trace has no id")
	}
	tr.SetJob("j-00000001")
	tr.SetTenant("acme")
	tr.SetLane("queued")

	root := tr.Begin("job", 0)
	v := tr.Begin("validate", root)
	clk.advance(2 * time.Millisecond)
	tr.End(v)
	run := tr.Begin("engine-run", root)
	clk.advance(1 * time.Millisecond)
	chunkStart := clk.now()
	clk.advance(3 * time.Millisecond)
	tr.Add("chunk[0]", run, chunkStart, clk.now(), "work-items [0,4)", 0)
	clk.advance(1 * time.Millisecond)
	tr.EndDetail(run, "ok", 4)
	tr.End(root)
	tr.Finish("done", "")

	// Lookup by job id and by trace id must agree.
	byJob := checkTrace(t, r, "j-00000001")
	byTrace := checkTrace(t, r, tr.TraceID())
	if byJob.TraceID != byTrace.TraceID || len(byJob.Spans) != len(byTrace.Spans) {
		t.Fatalf("job-id and trace-id lookups disagree: %+v vs %+v", byJob, byTrace)
	}
	if byJob.State != "done" || byJob.Lane != "queued" || byJob.Tenant != "acme" {
		t.Fatalf("trace metadata wrong: %+v", byJob)
	}
	if got := len(byJob.Spans); got != 4 {
		t.Fatalf("span count %d, want 4", got)
	}
	// The chunk span must be parented under engine-run and contained.
	chunk := byJob.Spans[3]
	if chunk.Name != "chunk[0]" || chunk.Parent != run {
		t.Fatalf("chunk span: %+v (want parent %d)", chunk, run)
	}
	if byJob.DurationUS != (7 * time.Millisecond).Microseconds() {
		t.Fatalf("duration %dus, want 7000", byJob.DurationUS)
	}
}

func TestFlightFinishClosesOpenSpans(t *testing.T) {
	r, clk := newTestRecorder(8, 4, time.Hour)
	tr := r.Start("", "generate")
	root := tr.Begin("job", 0)
	tr.Begin("queue-wait", root) // deliberately left open
	clk.advance(5 * time.Millisecond)
	tr.Finish("cancelled", "cancelled before start")

	tj := checkTrace(t, r, tr.TraceID()) // validator rejects open spans on terminal traces
	for _, s := range tj.Spans {
		if s.EndUS < 0 {
			t.Fatalf("span %q still open after Finish", s.Name)
		}
	}
	// Double-finish must not reopen or restate.
	tr.Finish("done", "")
	if tj2, _ := r.Get(tr.TraceID()); tj2.State != "cancelled" {
		t.Fatalf("second Finish overwrote state: %s", tj2.State)
	}
}

func TestFlightRingWrap(t *testing.T) {
	r, _ := newTestRecorder(4, 2, time.Hour)
	var ids []string
	for i := 0; i < 10; i++ {
		tr := r.Start("", "generate")
		tr.SetJob(fmt.Sprintf("j-%08d", i))
		tr.Begin("job", 0)
		tr.Finish("done", "")
		ids = append(ids, tr.TraceID())
	}
	jobs := checkListing(t, r)
	if len(jobs.Jobs) != 4 {
		t.Fatalf("ring retained %d traces, want 4", len(jobs.Jobs))
	}
	if jobs.Recorded != 10 || jobs.Evicted != 6 {
		t.Fatalf("totals recorded=%d evicted=%d, want 10/6", jobs.Recorded, jobs.Evicted)
	}
	// Newest first: the most recent submission leads the listing.
	if jobs.Jobs[0].JobID != "j-00000009" {
		t.Fatalf("listing head %s, want j-00000009", jobs.Jobs[0].JobID)
	}
	// Evicted traces are gone from both indexes.
	if _, ok := r.Get(ids[0]); ok {
		t.Fatal("oldest trace still resolvable after ring wrap")
	}
	if _, ok := r.Get("j-00000000"); ok {
		t.Fatal("oldest job id still resolvable after ring wrap")
	}
	if _, ok := r.Get(ids[9]); !ok {
		t.Fatal("newest trace not resolvable")
	}
}

func TestFlightPinningUnderChurn(t *testing.T) {
	r, clk := newTestRecorder(4, 2, 100*time.Millisecond)

	// One failed job and one slow job, then a churn of fast successes
	// that wraps the ring many times over.
	failed := r.Start("", "generate")
	failed.SetJob("j-failed")
	failed.Finish("failed", "boom")

	slow := r.Start("", "generate")
	slow.SetJob("j-slow")
	clk.advance(150 * time.Millisecond) // ≥ slow threshold
	slow.Finish("done", "")

	for i := 0; i < 50; i++ {
		tr := r.Start("", "generate")
		tr.Finish("done", "")
	}

	// Both pinned traces must have survived the churn.
	fj := checkTrace(t, r, "j-failed")
	if !fj.Pinned || fj.State != "failed" {
		t.Fatalf("failed trace not pinned: %+v", fj)
	}
	sj := checkTrace(t, r, "j-slow")
	if !sj.Pinned || sj.DurationUS < (100*time.Millisecond).Microseconds() {
		t.Fatalf("slow trace not pinned: %+v", sj)
	}
	jobs := checkListing(t, r)
	if jobs.Pinned != 2 {
		t.Fatalf("pinned count %d, want 2", jobs.Pinned)
	}
	// 4 ring + 2 pinned-out-of-ring retained.
	if len(jobs.Jobs) != 6 {
		t.Fatalf("retained %d traces, want 6 (4 ring + 2 pinned)", len(jobs.Jobs))
	}

	// A third pinned trace evicts the oldest pinned one (FIFO cap 2).
	third := r.Start("", "generate")
	third.SetJob("j-failed-2")
	third.Finish("failed", "boom again")
	for i := 0; i < 10; i++ {
		tr := r.Start("", "generate")
		tr.Finish("done", "")
	}
	if _, ok := r.Get("j-failed"); ok {
		t.Fatal("oldest pinned trace survived past the pin cap")
	}
	for _, id := range []string{"j-slow", "j-failed-2"} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("pinned trace %s lost", id)
		}
	}
	checkListing(t, r)
}

func TestFlightFastJobsNotPinned(t *testing.T) {
	r, clk := newTestRecorder(4, 2, 100*time.Millisecond)
	tr := r.Start("", "generate")
	clk.advance(10 * time.Millisecond) // well under the threshold
	tr.Finish("done", "")
	if tj, _ := r.Get(tr.TraceID()); tj.Pinned {
		t.Fatal("fast successful job was pinned")
	}
	if st := r.Stats(); st.Pinned != 0 {
		t.Fatalf("pinned stat %d, want 0", st.Pinned)
	}
}

func TestFlightSpanCap(t *testing.T) {
	r, _ := newTestRecorder(2, 1, time.Hour)
	tr := r.Start("", "generate")
	for i := 0; i < maxSpans+100; i++ {
		tr.End(tr.Begin("s", 0))
	}
	tr.Finish("done", "")
	tj := checkTrace(t, r, tr.TraceID())
	if len(tj.Spans) != maxSpans {
		t.Fatalf("stored %d spans, want cap %d", len(tj.Spans), maxSpans)
	}
	if tj.Dropped != 100 {
		t.Fatalf("dropped %d, want 100", tj.Dropped)
	}
	if tr.SpanCount() != maxSpans+100 {
		t.Fatalf("SpanCount %d, want %d", tr.SpanCount(), maxSpans+100)
	}
}

func TestFlightNilSafety(t *testing.T) {
	var r *Recorder
	tr := r.Start("deadbeefdeadbeefdeadbeefdeadbeef", "generate")
	if tr != nil {
		t.Fatal("nil recorder minted a trace")
	}
	// Every operation on the nil trace must be a no-op, not a panic.
	tr.SetJob("j-x")
	tr.SetTenant("t")
	tr.SetLane("queued")
	id := tr.Begin("job", 0)
	if id != 0 {
		t.Fatalf("nil Begin returned %d", id)
	}
	tr.End(id)
	tr.EndDetail(id, "d", 1)
	tr.Add("chunk[0]", 0, time.Now(), time.Now(), "", 0)
	tr.Event("e", 0, "")
	tr.Finish("done", "")
	if tr.TraceID() != "" || tr.SpanCount() != 0 {
		t.Fatal("nil trace reported state")
	}
	if _, ok := r.Get("j-x"); ok {
		t.Fatal("nil recorder resolved a trace")
	}
	jobs := r.Jobs()
	if jobs.Recorded != 0 || len(jobs.Jobs) != 0 {
		t.Fatal("nil recorder listed traces")
	}
	if st := r.Stats(); st != (Stats{}) {
		t.Fatalf("nil recorder stats %+v", st)
	}
	if r.SlowThreshold() != 0 {
		t.Fatal("nil recorder has a slow threshold")
	}
}

func TestFlightConcurrentChurnAndReads(t *testing.T) {
	// Writers churn traces (with pins) while readers snapshot the
	// listing and individual traces; the race detector plus the JSON
	// validators are the assertion.
	r := New(16, 4, time.Hour)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr := r.Start("", "generate")
				tr.SetJob(fmt.Sprintf("j-%d-%d", w, i))
				root := tr.Begin("job", 0)
				s := tr.Begin("engine-run", root)
				tr.Add("chunk[0]", s, time.Now(), time.Now(), "", int64(i))
				tr.End(s)
				tr.End(root)
				if i%7 == 0 {
					tr.Finish("failed", "injected")
				} else {
					tr.Finish("done", "")
				}
			}
		}(w)
	}
	deadline := time.After(200 * time.Millisecond)
	for {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			checkListing(t, r)
			return
		default:
		}
		jobs := r.Jobs()
		body, err := json.Marshal(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := CheckJobsJSON(body); err != nil {
			t.Fatalf("listing invalid under churn: %v", err)
		}
		for _, s := range jobs.Jobs {
			if tj, ok := r.Get(s.TraceID); ok {
				if b, err := json.Marshal(tj); err == nil {
					if _, err := CheckTraceJSON(b); err != nil {
						t.Fatalf("trace %s invalid under churn: %v", s.TraceID, err)
					}
				}
			}
		}
	}
}

func TestTraceIDFrom(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if got := TraceIDFrom(valid); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("TraceIDFrom(valid) = %q", got)
	}
	for _, bad := range []string{
		"",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // unknown version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // all-zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",    // truncated
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase
		"00-0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331-01", // bad separator
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333x-01", // bad parent hex
	} {
		if got := TraceIDFrom(bad); got != "" {
			t.Fatalf("TraceIDFrom(%q) = %q, want \"\"", bad, got)
		}
	}
	// A recorder must adopt a valid id and replace an invalid one.
	r, _ := newTestRecorder(4, 2, time.Hour)
	tr := r.Start(TraceIDFrom(valid), "generate")
	if tr.TraceID() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("recorder did not adopt the caller id: %s", tr.TraceID())
	}
	tr2 := r.Start("not-a-trace-id", "generate")
	if !validTraceID(tr2.TraceID()) {
		t.Fatalf("minted id %q invalid", tr2.TraceID())
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !validTraceID(id) {
			t.Fatalf("minted id %q invalid", id)
		}
		if seen[id] {
			t.Fatalf("duplicate minted id %q", id)
		}
		seen[id] = true
	}
}

func TestCheckTraceJSONRejects(t *testing.T) {
	base := func() TraceJSON {
		return TraceJSON{
			TraceID: "0af7651916cd43dd8448eb211c80319c",
			State:   "done", DurationUS: 10,
			Spans: []Span{
				{ID: 1, Name: "job", StartUS: 0, EndUS: 10},
				{ID: 2, Parent: 1, Name: "validate", StartUS: 1, EndUS: 2},
			},
		}
	}
	cases := []struct {
		name   string
		mutate func(*TraceJSON)
	}{
		{"open span on terminal trace", func(t *TraceJSON) { t.Spans[1].EndUS = -1 }},
		{"end before start", func(t *TraceJSON) { t.Spans[1].EndUS = 0 }},
		{"child starts before parent", func(t *TraceJSON) { t.Spans[0].StartUS = 5; t.Spans[0].EndUS = 10 }},
		{"child ends after parent", func(t *TraceJSON) { t.Spans[1].EndUS = 99 }},
		{"forward parent", func(t *TraceJSON) { t.Spans[0].Parent = 2 }},
		{"id gap", func(t *TraceJSON) { t.Spans[1].ID = 7 }},
		{"empty name", func(t *TraceJSON) { t.Spans[1].Name = "" }},
		{"empty state", func(t *TraceJSON) { t.State = "" }},
		{"terminal without duration", func(t *TraceJSON) { t.DurationUS = -1 }},
	}
	for _, tc := range cases {
		tj := base()
		tc.mutate(&tj)
		body, err := json.Marshal(tj)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := CheckTraceJSON(body); err == nil {
			t.Errorf("%s: validator accepted a corrupt trace", tc.name)
		}
	}
	// The unmutated base must pass.
	body, _ := json.Marshal(base())
	if _, err := CheckTraceJSON(body); err != nil {
		t.Fatalf("base trace rejected: %v", err)
	}
	// Unknown fields are rejected (strict decode).
	if _, err := CheckTraceJSON([]byte(`{"trace_id":"x","state":"done","duration_us":1,"start_unix_us":0,"spans":[],"bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestFlightChromeExport(t *testing.T) {
	r, clk := newTestRecorder(4, 2, time.Hour)
	tr := r.Start("", "generate")
	tr.SetJob("j-chrome")
	root := tr.Begin("job", 0)
	run := tr.Begin("engine-run", root)
	s := clk.now()
	clk.advance(2 * time.Millisecond)
	tr.Add("chunk[0]", run, s, clk.now(), "work-items [0,2)", 0)
	tr.Add("chunk[1]", run, s, clk.now(), "work-items [2,4) stolen", 1)
	tr.End(run)
	tr.End(root)
	tr.Finish("done", "")

	tj, _ := r.Get("j-chrome")
	b, err := tj.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	// process_name + serve thread + 2 worker threads + 4 spans.
	var meta, spans int
	tids := map[float64]bool{}
	for _, ev := range out.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			spans++
			tids[ev["tid"].(float64)] = true
		}
	}
	if meta != 4 || spans != 4 {
		t.Fatalf("chrome export: %d metadata, %d spans (want 4, 4)\n%s", meta, spans, b)
	}
	// job+engine-run on the serve tid, one tid per chunk worker.
	if len(tids) != 3 {
		t.Fatalf("chrome export used %d tids, want 3", len(tids))
	}
}
