package normal

import "math"

// InverseNormalCDF computes Φ⁻¹(p) in double precision using Wichura's
// algorithm AS241 (routine PPND16), accurate to about 1e-16 relative error
// over p ∈ (0,1). It is the oracle against which both hardware-oriented
// ICDF implementations are generated and tested, standing in for the
// Matlab/Boost reference the paper's authors had available.
//
// p outside (0,1) returns ±Inf (p=0 → −Inf, p=1 → +Inf) and NaN propagates.
func InverseNormalCDF(p float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}

	q := p - 0.5
	if math.Abs(q) <= 0.425 {
		// Central region: rational approximation in r = 0.180625 − q².
		r := 0.180625 - q*q
		num := (((((((ppA[7]*r+ppA[6])*r+ppA[5])*r+ppA[4])*r+ppA[3])*r+ppA[2])*r+ppA[1])*r + ppA[0])
		den := (((((((ppB[7]*r+ppB[6])*r+ppB[5])*r+ppB[4])*r+ppB[3])*r+ppB[2])*r+ppB[1])*r + 1.0)
		return q * num / den
	}

	// Tail regions: r = sqrt(−log(min(p, 1−p))).
	r := p
	if q > 0 {
		r = 1 - p
	}
	r = math.Sqrt(-math.Log(r))
	var z float64
	if r <= 5 {
		r -= 1.6
		num := (((((((ppC[7]*r+ppC[6])*r+ppC[5])*r+ppC[4])*r+ppC[3])*r+ppC[2])*r+ppC[1])*r + ppC[0])
		den := (((((((ppD[7]*r+ppD[6])*r+ppD[5])*r+ppD[4])*r+ppD[3])*r+ppD[2])*r+ppD[1])*r + 1.0)
		z = num / den
	} else {
		r -= 5
		num := (((((((ppE[7]*r+ppE[6])*r+ppE[5])*r+ppE[4])*r+ppE[3])*r+ppE[2])*r+ppE[1])*r + ppE[0])
		den := (((((((ppF[7]*r+ppF[6])*r+ppF[5])*r+ppF[4])*r+ppF[3])*r+ppF[2])*r+ppF[1])*r + 1.0)
		z = num / den
	}
	if q < 0 {
		z = -z
	}
	return z
}

// AS241 PPND16 coefficient sets (Wichura 1988). Index 0 of the
// denominator arrays is unused (the constant term is 1).
var (
	ppA = [8]float64{
		3.3871328727963666080e0,
		1.3314166789178437745e2,
		1.9715909503065514427e3,
		1.3731693765509461125e4,
		4.5921953931549871457e4,
		6.7265770927008700853e4,
		3.3430575583588128105e4,
		2.5090809287301226727e3,
	}
	ppB = [8]float64{
		0,
		4.2313330701600911252e1,
		6.8718700749205790830e2,
		5.3941960214247511077e3,
		2.1213794301586595867e4,
		3.9307895800092710610e4,
		2.8729085735721942674e4,
		5.2264952788528545610e3,
	}
	ppC = [8]float64{
		1.42343711074968357734e0,
		4.63033784615654529590e0,
		5.76949722146069140550e0,
		3.64784832476320460504e0,
		1.27045825245236838258e0,
		2.41780725177450611770e-1,
		2.27238449892691845833e-2,
		7.74545014278341407640e-4,
	}
	ppD = [8]float64{
		0,
		2.05319162663775882187e0,
		1.67638483018380384940e0,
		6.89767334985100004550e-1,
		1.48103976427480074590e-1,
		1.51986665636164571966e-2,
		5.47593808499534494600e-4,
		1.05075007164441684324e-9,
	}
	ppE = [8]float64{
		6.65790464350110377720e0,
		5.46378491116411436990e0,
		1.78482653991729133580e0,
		2.96560571828504891230e-1,
		2.65321895265761230930e-2,
		1.24266094738807843860e-3,
		2.71155556874348757815e-5,
		2.01033439929228813265e-7,
	}
	ppF = [8]float64{
		0,
		5.99832206555887937690e-1,
		1.36929880922735805310e-1,
		1.48753612908506148525e-2,
		7.86869131145613259100e-4,
		1.84631831751005468180e-5,
		1.42151175831644588870e-7,
		2.04426310338993978564e-15,
	}
)

// NormalCDF evaluates Φ(x) in double precision via the complementary error
// function; it is used by the statistical validation layer and by tests of
// the inverse.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
