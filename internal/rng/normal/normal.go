// Package normal implements the uniform-to-normal transformations of the
// case study (paper Section II-D):
//
//   - Marsaglia-Bray polar method (rejection-based; Config1/Config2): two
//     uniform inputs, one output, log/sqrt/division arithmetic, rejection
//     rate 1 − π/4 ≈ 21.5 %.
//   - ICDF "FPGA-style" (Config3/Config4 on FPGA): bit-level hierarchical
//     segmentation with fixed-point quadratic interpolation, after
//     de Schryver et al. — only logic operations, ideal for FPGAs, slow as
//     a scalar integer emulation on CPUs.
//   - ICDF "CUDA-style" (Config3/Config4 on CPU/GPU/PHI): a branch-minimised
//     erfcinv following Giles' erfinv approximation and the identity
//     erfcinv(x) = erfinv(1−x), mirroring Nvidia's _curand_normal_icdf.
//   - Box-Muller, kept as a baseline (the heavy-trigonometry method the
//     Marsaglia-Bray transform avoids).
//   - Wichura's AS241 double-precision inverse normal CDF, used as the
//     coefficient generator and accuracy oracle for everything above.
//
// Every transform is available in two shapes: a pure step function
// (word(s) in, candidate out) used by the pipelined kernels, and an
// rng.NormalSource adapter that owns its uniform sources.
package normal

import (
	"math"

	"github.com/decwi/decwi/internal/rng"
)

// Kind enumerates the uniform-to-normal transformations.
type Kind int

const (
	// MarsagliaBray is the rejection-based polar transform.
	MarsagliaBray Kind = iota
	// ICDFFPGA is the bit-level segmented inverse-CDF transform.
	ICDFFPGA
	// ICDFCUDA is the erfinv-based inverse-CDF transform.
	ICDFCUDA
	// BoxMuller is the trigonometric baseline.
	BoxMuller
	// Ziggurat is the Marsaglia-Tsang ziggurat rejection method — not a
	// Table I configuration, but the extension target the paper's
	// conclusion names (another rejection algorithm with data-dependent
	// branches that the decoupled design absorbs unchanged).
	Ziggurat
)

// String returns the conventional name of the transform.
func (k Kind) String() string {
	switch k {
	case MarsagliaBray:
		return "Marsaglia-Bray"
	case ICDFFPGA:
		return "ICDF FPGA-style"
	case ICDFCUDA:
		return "ICDF CUDA-style"
	case BoxMuller:
		return "Box-Muller"
	case Ziggurat:
		return "Ziggurat"
	default:
		return "unknown"
	}
}

// Rejecting reports whether the transform can invalidate its output, i.e.
// whether downstream Mersenne-Twisters must be gated on its validity flag.
func (k Kind) Rejecting() bool { return k == MarsagliaBray || k == Ziggurat }

// UniformsPerCandidate returns how many raw uniform words one candidate
// consumes. The polar method needs two (the paper splits them onto two
// parallel dynamically-created Mersenne-Twisters); the ICDF variants and
// Box-Muller are counted per output actually used by the case study.
func (k Kind) UniformsPerCandidate() int {
	switch k {
	case MarsagliaBray, BoxMuller:
		return 2
	case Ziggurat:
		return 3
	default:
		return 1
	}
}

// Source constructs an rng.NormalSource of the given kind over the
// provided uniform words. MarsagliaBray and BoxMuller consume two words
// per candidate, the ICDF kinds one.
func Source(k Kind, u rng.Source32) rng.NormalSource {
	switch k {
	case MarsagliaBray:
		return &PolarSource{U: u}
	case ICDFFPGA:
		return &ICDFFPGASource{U: u}
	case ICDFCUDA:
		return &ICDFCUDASource{U: u}
	case BoxMuller:
		return &BoxMullerSource{U: u}
	case Ziggurat:
		return &ZigguratSource{U: u}
	default:
		panic("normal: unknown transform kind")
	}
}

// PolarStep performs one Marsaglia-Bray polar attempt from two raw words.
// It is branch-free up to the single validity predicate, exactly as the
// pipelined FPGA block computes it: everything is evaluated, validity is
// decided afterwards. Only the first of the two mathematical outputs is
// used (paper: "it also needs two input uniform RNs to generate one
// output").
func PolarStep(w1, w2 uint32) (z float32, ok bool) {
	v1 := rng.U32ToSigned(w1)
	v2 := rng.U32ToSigned(w2)
	s := v1*v1 + v2*v2
	ok = s > 0 && s < 1
	// Compute unconditionally; clamp s into the valid domain so the
	// arithmetic units never see log(0) or a negative operand. Hardware
	// pipelines do the same — the result is simply discarded when !ok.
	sc := s
	if sc <= 0 || sc >= 1 {
		sc = 0.5
	}
	f := float32(math.Sqrt(-2 * math.Log(float64(sc)) / float64(sc)))
	return v1 * f, ok
}

// PolarSource adapts PolarStep to an rng.NormalSource over a shared
// uniform stream.
type PolarSource struct{ U rng.Source32 }

// NextNormal returns one polar candidate, consuming two uniform words.
func (p *PolarSource) NextNormal() (float32, bool) {
	return PolarStep(p.U.Uint32(), p.U.Uint32())
}

// BoxMullerStep computes one Box-Muller output from two raw words. It is
// never invalid; it exists as the heavy-arithmetic baseline the paper's
// Section II-D2 contrasts the polar method against.
func BoxMullerStep(w1, w2 uint32) float32 {
	u1 := float64(rng.U32ToFloatOpen(w1))
	u2 := float64(rng.U32ToFloatOpen(w2))
	return float32(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
}

// BoxMullerSource adapts BoxMullerStep to an rng.NormalSource.
type BoxMullerSource struct{ U rng.Source32 }

// NextNormal returns one Box-Muller variate (always valid).
func (b *BoxMullerSource) NextNormal() (float32, bool) {
	return BoxMullerStep(b.U.Uint32(), b.U.Uint32()), true
}
