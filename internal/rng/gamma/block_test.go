package gamma

import (
	"testing"

	"github.com/decwi/decwi/internal/rng/mt"
	"github.com/decwi/decwi/internal/rng/normal"
)

var blockTransforms = []normal.Kind{
	normal.MarsagliaBray, normal.ICDFFPGA, normal.ICDFCUDA, normal.BoxMuller, normal.Ziggurat,
}

// TestCycleBlockMatchesCycleStep proves the block compute path's core
// contract: for every transform, a CycleBlock of n attempts produces the
// bitwise-identical valid outputs, in order, as n CycleStep calls on a
// clone-seeded generator, and leaves the cycle/valid/accept counters in
// the identical state.
func TestCycleBlockMatchesCycleStep(t *testing.T) {
	const attempts = 700 // spans several MT521 blocks and a partial MT19937 one
	for _, tr := range blockTransforms {
		t.Run(tr.String(), func(t *testing.T) {
			p := MustFromVariance(1.39)
			blk := NewGenerator(tr, mt.MT521Params, p, 4242)
			ref := NewGenerator(tr, mt.MT521Params, p, 4242)

			s := NewBlockScratch(attempts)
			dst := make([]float32, attempts)
			produced := blk.CycleBlock(dst, attempts, s)

			var want []float32
			for i := 0; i < attempts; i++ {
				if r := ref.CycleStep(); r.Valid {
					want = append(want, r.Gamma)
				}
			}
			if produced != len(want) {
				t.Fatalf("block produced %d values, scalar produced %d", produced, len(want))
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("value %d: block %v != scalar %v", i, dst[i], want[i])
				}
			}
			if blk.Cycles() != ref.Cycles() || blk.NormalValid() != ref.NormalValid() || blk.Accepted() != ref.Accepted() {
				t.Fatalf("counter mismatch: block (%d,%d,%d) scalar (%d,%d,%d)",
					blk.Cycles(), blk.NormalValid(), blk.Accepted(),
					ref.Cycles(), ref.NormalValid(), ref.Accepted())
			}
		})
	}
}

// TestCycleBlockInterleavesWithCycleStep verifies the two disciplines
// compose: alternating block and one-word phases (including parameter
// swaps, as SECLOOP does between sectors) must reproduce the pure
// one-word stream exactly.
func TestCycleBlockInterleavesWithCycleStep(t *testing.T) {
	for _, tr := range blockTransforms {
		t.Run(tr.String(), func(t *testing.T) {
			blk := NewGenerator(tr, mt.MT19937Params, MustFromVariance(0.8), 99)
			ref := NewGenerator(tr, mt.MT19937Params, MustFromVariance(0.8), 99)
			s := NewBlockScratch(256)
			dst := make([]float32, 256)

			var got, want []float32
			phases := []int{37, 256, 1, 100, 5, 256}
			for pi, n := range phases {
				if pi == 3 { // mid-run sector swap
					p2 := MustFromVariance(2.5)
					blk.SetParams(p2)
					ref.SetParams(p2)
				}
				if pi%2 == 0 { // block phase
					m := blk.CycleBlock(dst, n, s)
					got = append(got, dst[:m]...)
				} else { // one-word phase
					for i := 0; i < n; i++ {
						if r := blk.CycleStep(); r.Valid {
							got = append(got, r.Gamma)
						}
					}
				}
				for i := 0; i < n; i++ {
					if r := ref.CycleStep(); r.Valid {
						want = append(want, r.Gamma)
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("interleaved run produced %d values, scalar %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("value %d: interleaved %v != scalar %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCycleBlockAlphaFlagPath exercises both sides of the α≤1 boost
// correction through the block path (variance < 1 means α > 1, no
// correction; variance > 1 means α < 1, Pow applies).
func TestCycleBlockAlphaFlagPath(t *testing.T) {
	for _, v := range []float64{0.25, 4.0} {
		p := MustFromVariance(v)
		blk := NewGenerator(normal.ICDFFPGA, mt.MT19937Params, p, 5)
		ref := NewGenerator(normal.ICDFFPGA, mt.MT19937Params, p, 5)
		s := NewBlockScratch(512)
		dst := make([]float32, 512)
		m := blk.CycleBlock(dst, 512, s)
		var want []float32
		for i := 0; i < 512; i++ {
			if r := ref.CycleStep(); r.Valid {
				want = append(want, r.Gamma)
			}
		}
		if m != len(want) {
			t.Fatalf("v=%g: block %d values, scalar %d", v, m, len(want))
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("v=%g value %d: %v != %v", v, i, dst[i], want[i])
			}
		}
	}
}

// TestSteadyStateBlockZeroAllocs gates the ISSUE's allocation invariant:
// the steady-state block loop — fills, transform, rejection, correction —
// must not allocate at all.
func TestSteadyStateBlockZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	for _, tr := range blockTransforms {
		g := NewGenerator(tr, mt.MT19937Params, MustFromVariance(1.39), 11)
		s := NewBlockScratch(256)
		dst := make([]float32, 256)
		g.CycleBlock(dst, 256, s) // warm lazy tables
		if avg := testing.AllocsPerRun(30, func() { g.CycleBlock(dst, 256, s) }); avg != 0 {
			t.Fatalf("%v: CycleBlock allocates %v times per call, want 0", tr, avg)
		}
	}
}

func BenchmarkCycleBlock(b *testing.B) {
	for _, tr := range blockTransforms {
		b.Run(tr.String(), func(b *testing.B) {
			g := NewGenerator(tr, mt.MT19937Params, MustFromVariance(1.39), 1)
			s := NewBlockScratch(256)
			dst := make([]float32, 256)
			b.SetBytes(4 * 256) // attempted values per call
			for i := 0; i < b.N; i++ {
				g.CycleBlock(dst, 256, s)
			}
		})
	}
}

func BenchmarkCycleStepLoop(b *testing.B) {
	for _, tr := range blockTransforms {
		b.Run(tr.String(), func(b *testing.B) {
			g := NewGenerator(tr, mt.MT19937Params, MustFromVariance(1.39), 1)
			b.SetBytes(4 * 256)
			for i := 0; i < b.N; i++ {
				for k := 0; k < 256; k++ {
					g.CycleStep()
				}
			}
		})
	}
}
