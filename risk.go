package decwi

import (
	"fmt"
	"math"

	"github.com/decwi/decwi/internal/creditrisk"
	"github.com/decwi/decwi/internal/telemetry"
)

// This file exposes the CreditRisk+ application layer (Section II-D4):
// the consumer of the gamma sector variables the kernels generate.

// Sector is one systematic risk factor with gamma variance v.
type Sector = creditrisk.Sector

// Obligor is one loan: default probability, exposure, sector weights
// summing to 1.
type Obligor = creditrisk.Obligor

// Portfolio is a CreditRisk+ portfolio.
type Portfolio = creditrisk.Portfolio

// NewUniformPortfolio builds a homogeneous portfolio of n obligors with
// the given PD and exposure, affiliated round-robin to sectors at
// variance v each.
func NewUniformPortfolio(sectors int, variance float64, n int, pd, exposure float64) (*Portfolio, error) {
	if sectors < 1 {
		return nil, fmt.Errorf("decwi: need at least one sector")
	}
	secs := make([]Sector, sectors)
	for k := range secs {
		secs[k] = Sector{Name: fmt.Sprintf("S%d", k), Variance: variance}
	}
	return creditrisk.UniformPortfolio(secs, n, pd, exposure)
}

// RiskReport summarizes a portfolio risk run.
type RiskReport struct {
	// Scenarios is the Monte-Carlo sample size.
	Scenarios int
	// ExpectedLoss / LossStd are the simulated moments; AnalyticEL /
	// AnalyticStd the closed-form cross-checks.
	ExpectedLoss, LossStd   float64
	AnalyticEL, AnalyticStd float64
	// VaR999 and ES999 are the 99.9 % value-at-risk and expected
	// shortfall (the regulatory tail measures).
	VaR999, ES999 float64
	// PanjerVaR999 is the exact banded recursion's quantile, when a
	// banding unit was supplied (0 otherwise).
	PanjerVaR999 float64
	// RiskContributions is the CSFB capital allocation: each obligor's
	// marginal contribution to the loss standard deviation
	// (Euler-consistent: they sum to AnalyticStd).
	RiskContributions []float64
}

// PortfolioRisk runs the CreditRisk+ Monte-Carlo using the gamma
// generator of configuration c, cross-checked against the analytic
// moments and (when bandUnit > 0) the exact Panjer recursion.
func PortfolioRisk(p *Portfolio, c ConfigID, scenarios int, bandUnit float64, seed uint64) (*RiskReport, error) {
	return PortfolioRiskObserved(p, c, scenarios, bandUnit, seed, nil)
}

// PortfolioRiskObserved is PortfolioRisk with a live metrics recorder:
// the Monte-Carlo loop feeds rec a scenario progress counter,
// per-sector rejection-trip histograms and a defaults-per-scenario
// histogram, so a long run can be scraped over the -http observability
// server while it executes. A nil rec behaves exactly like
// PortfolioRisk.
func PortfolioRiskObserved(p *Portfolio, c ConfigID, scenarios int, bandUnit float64, seed uint64, rec *telemetry.Recorder) (*RiskReport, error) {
	k, err := c.kernel()
	if err != nil {
		return nil, err
	}
	res, err := creditrisk.SimulateMC(p, creditrisk.MCConfig{
		Scenarios: scenarios, Transform: k.Transform, MTParams: k.MTParams, Seed: seed,
		Telemetry: rec,
	})
	if err != nil {
		return nil, err
	}
	v, err := res.VaR(0.999)
	if err != nil {
		return nil, err
	}
	es, err := res.ExpectedShortfall(0.999)
	if err != nil {
		return nil, err
	}
	rc, err := p.RiskContributions()
	if err != nil {
		return nil, err
	}
	rep := &RiskReport{
		Scenarios:         scenarios,
		ExpectedLoss:      res.MeanLoss,
		LossStd:           math.Sqrt(res.LossVar),
		AnalyticEL:        p.ExpectedLoss(),
		AnalyticStd:       math.Sqrt(p.LossVariance()),
		VaR999:            v,
		ES999:             es,
		RiskContributions: rc,
	}
	if bandUnit > 0 {
		bp, err := creditrisk.NewBandedPortfolio(p, bandUnit)
		if err != nil {
			return nil, err
		}
		// Size the truncation to comfortably cover the 99.9 % tail.
		maxUnits := int((p.ExpectedLoss() + 20*rep.AnalyticStd) / bandUnit)
		if maxUnits < 64 {
			maxUnits = 64
		}
		dist, err := bp.PanjerLossDistribution(maxUnits)
		if err != nil {
			return nil, err
		}
		pv, err := dist.Quantile(0.999)
		if err != nil {
			return nil, err
		}
		rep.PanjerVaR999 = pv
	}
	return rep, nil
}
