package normal

import (
	"math"
	"math/bits"
	"sync"

	"github.com/decwi/decwi/internal/rng"
)

// ICDF "FPGA-style": a bit-level inverse normal CDF following the
// hardware-efficient design of de Schryver et al. (IJRC 2012), which the
// paper uses on the FPGA (Section II-D3). The input word is decomposed as
//
//	bit 0            → sign (which half of the distribution)
//	leading-one scan → octave (non-uniform segmentation that halves
//	                   toward the tail, so precision follows the
//	                   curvature of Φ⁻¹)
//	next 3 bits      → one of 8 equal subsegments inside the octave
//	remaining bits   → the intra-segment offset t ∈ [0,1)
//
// and the output is a fixed-point quadratic c₀ + c₁t + c₂t² per
// (octave, subsegment). Everything is shifts, masks, comparisons and
// integer multiplies — exactly the operation mix that is nearly free on an
// FPGA and, per Table III, ~3.5x slower than the erfinv route when
// emulated with 32-bit unsigned integer arithmetic on CPU and Xeon Phi.
const (
	icdfOctaves    = 28 // octave k covers x ∈ [2^-(k+2), 2^-(k+1))
	icdfSegBits    = 3
	icdfSegsPerOct = 1 << icdfSegBits
	icdfFracBits   = 28 // fixed-point fraction bits of t and the coefficients
)

// icdfCoeff holds one segment's fixed-point quadratic (Q4.28).
type icdfCoeff struct{ c0, c1, c2 int64 }

var (
	icdfTable     [icdfOctaves][icdfSegsPerOct]icdfCoeff
	icdfSaturate  int64 // output for inputs deeper than the deepest octave
	icdfTableOnce sync.Once
)

// buildICDFTable fits each segment's quadratic through the Wichura oracle
// at t ∈ {0, ½, 1} and quantizes to Q4.28. This plays the role of the
// offline coefficient generation that precedes bitstream creation.
func buildICDFTable() {
	for k := 0; k < icdfOctaves; k++ {
		lo := math.Ldexp(1, -(k + 2)) // 2^-(k+2)
		dx := lo / icdfSegsPerOct
		for j := 0; j < icdfSegsPerOct; j++ {
			x0 := lo + float64(j)*dx
			z0 := InverseNormalCDF(x0)
			zm := InverseNormalCDF(x0 + 0.5*dx)
			z1 := InverseNormalCDF(x0 + dx)
			c2 := 2 * (z0 + z1 - 2*zm)
			c1 := z1 - z0 - c2
			c0 := z0
			icdfTable[k][j] = icdfCoeff{
				c0: int64(math.Round(c0 * (1 << icdfFracBits))),
				c1: int64(math.Round(c1 * (1 << icdfFracBits))),
				c2: int64(math.Round(c2 * (1 << icdfFracBits))),
			}
		}
	}
	// Saturation value: the left edge of the deepest octave.
	icdfSaturate = int64(math.Round(InverseNormalCDF(math.Ldexp(1, -(icdfOctaves+1))) * (1 << icdfFracBits)))
}

// ICDFFPGAStep transforms one raw word into a normal variate using only
// bit-level and integer operations (plus one final int→float conversion).
// ok is false only when the input lies beyond the deepest octave and the
// output had to saturate — a ~2^-29 probability event, mirroring the rare
// invalidation of the hardware unit that Section II-E accounts for.
func ICDFFPGAStep(w uint32) (z float32, ok bool) {
	icdfTableOnce.Do(buildICDFTable)

	sign := w&1 != 0
	h := w >> 1 // 31-bit magnitude selecting x ∈ (0, 0.5)

	var q int64
	ok = true
	if h == 0 {
		q = icdfSaturate
		ok = false
	} else {
		p := 31 - bits.LeadingZeros32(h) // leading-one position, 0..30
		k := 30 - p                      // octave index
		if k >= icdfOctaves {
			q = icdfSaturate
			ok = false
		} else {
			// p ≥ 3 whenever k ≤ 27, so the subsegment bits exist.
			j := (h >> uint(p-icdfSegBits)) & (icdfSegsPerOct - 1)
			rbits := uint(p - icdfSegBits)
			rem := int64(h & ((1 << rbits) - 1))
			var t int64 // Q0.28 intra-segment offset
			if rbits <= icdfFracBits {
				t = rem << (icdfFracBits - rbits)
			} else {
				t = rem >> (rbits - icdfFracBits)
			}
			c := &icdfTable[k][j]
			r := c.c2
			r = c.c1 + ((r * t) >> icdfFracBits)
			r = c.c0 + ((r * t) >> icdfFracBits)
			q = r
		}
	}
	zf := float32(q) * float32(1.0/(1<<icdfFracBits))
	if sign {
		zf = -zf // upper half of the distribution
	}
	return zf, ok
}

// ICDFFPGASource adapts ICDFFPGAStep to an rng.NormalSource.
type ICDFFPGASource struct{ U rng.Source32 }

// NextNormal returns one bit-level ICDF variate from a single word.
func (s *ICDFFPGASource) NextNormal() (float32, bool) {
	return ICDFFPGAStep(s.U.Uint32())
}

// ICDFTableBytes returns the coefficient storage footprint in bytes as it
// would be mapped to BRAM (three Q4.28 words per segment, stored in 64-bit
// containers here; the hardware packs them into 36-bit BRAM words). The
// FPGA resource model uses this to cost the Config3/Config4 BRAM increase
// visible in Table II.
func ICDFTableBytes() int {
	return icdfOctaves * icdfSegsPerOct * 3 * 8
}
