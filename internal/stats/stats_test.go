package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/decwi/decwi/internal/rng"
	"github.com/decwi/decwi/internal/rng/gamma"
	"github.com/decwi/decwi/internal/rng/mt"
	"github.com/decwi/decwi/internal/rng/normal"
)

// TestRegularizedGammaKnownValues pins P(a,x) against hand-checkable
// identities: P(1,x) = 1−e^{−x}, P(1/2, x) = erf(√x), and the median-ish
// relation P(a,a) ≈ 0.5 for large a.
func TestRegularizedGammaKnownValues(t *testing.T) {
	for _, x := range []float64{0.01, 0.5, 1, 3, 10} {
		if got, want := RegularizedGammaP(1, x), 1-math.Exp(-x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1,%g)=%g want %g", x, got, want)
		}
		if got, want := RegularizedGammaP(0.5, x), math.Erf(math.Sqrt(x)); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(0.5,%g)=%g want %g", x, got, want)
		}
	}
	if got := RegularizedGammaP(1000, 1000); math.Abs(got-0.5) > 0.01 {
		t.Errorf("P(a,a) for large a should approach 1/2, got %g", got)
	}
}

// TestRegularizedGammaComplement: P + Q = 1 across both evaluation
// branches.
func TestRegularizedGammaComplement(t *testing.T) {
	for _, a := range []float64{0.3, 0.719, 1, 2.5, 10, 100} {
		for _, x := range []float64{0.001, 0.1, a / 2, a, a + 2, 3 * a, 10 * a} {
			p, q := RegularizedGammaP(a, x), RegularizedGammaQ(a, x)
			if math.Abs(p+q-1) > 1e-12 {
				t.Errorf("P+Q != 1 at a=%g x=%g: %g", a, x, p+q)
			}
		}
	}
}

// TestRegularizedGammaEdgeCases covers the domain boundary contract.
func TestRegularizedGammaEdgeCases(t *testing.T) {
	if RegularizedGammaP(2, 0) != 0 || RegularizedGammaQ(2, 0) != 1 {
		t.Error("x=0 boundary wrong")
	}
	if RegularizedGammaP(2, math.Inf(1)) != 1 {
		t.Error("x=Inf should give P=1")
	}
	for _, bad := range []struct{ a, x float64 }{{-1, 1}, {0, 1}, {2, -1}, {math.NaN(), 1}, {1, math.NaN()}} {
		if !math.IsNaN(RegularizedGammaP(bad.a, bad.x)) {
			t.Errorf("P(%g,%g) should be NaN", bad.a, bad.x)
		}
	}
}

// TestRegularizedGammaMonotone: P(a,·) is nondecreasing in x (property
// test over random evaluation points).
func TestRegularizedGammaMonotone(t *testing.T) {
	f := func(aRaw, x1Raw, x2Raw uint32) bool {
		a := 0.05 + float64(aRaw%1000)/100 // 0.05 .. 10.04
		x1 := float64(x1Raw%100000) / 1000 // 0 .. 100
		x2 := float64(x2Raw%100000) / 1000
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return RegularizedGammaP(a, x1) <= RegularizedGammaP(a, x2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestGammaDistBasics checks PDF normalization (by numerical quadrature),
// CDF/Quantile inversion and the moments.
func TestGammaDistBasics(t *testing.T) {
	for _, v := range []float64{0.4, 1.39, 5} {
		g, err := NewGammaDist(1/v, v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g.Mean()-1) > 1e-12 {
			t.Errorf("v=%g: mean %g", v, g.Mean())
		}
		if math.Abs(g.Variance()-v) > 1e-12 {
			t.Errorf("v=%g: variance %g", v, g.Variance())
		}
		// PDF/CDF consistency on a pole-free interval: ∫₁⁵ pdf dx must
		// equal CDF(5)−CDF(1). (For α<1 the density has an integrable
		// pole at 0, so a naive quadrature over the full support is not
		// a meaningful check.)
		lo, hi := 1.0, 5.0
		const steps = 200000
		h := (hi - lo) / steps
		integ := 0.0
		prev := g.PDF(lo)
		for i := 1; i <= steps; i++ {
			x := lo + float64(i)*h
			cur := g.PDF(x)
			integ += (prev + cur) / 2 * h
			prev = cur
		}
		if want := g.CDF(hi) - g.CDF(lo); math.Abs(integ-want) > 1e-6 {
			t.Errorf("v=%g: ∫₁⁵ pdf = %g, CDF diff = %g", v, integ, want)
		}
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			q, err := g.Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			if back := g.CDF(q); math.Abs(back-p) > 1e-9 {
				t.Errorf("v=%g p=%g: CDF(Quantile)=%g", v, p, back)
			}
		}
	}
	if _, err := NewGammaDist(0, 1); err == nil {
		t.Error("α=0 should fail")
	}
	if _, err := (GammaDist{Alpha: 1, Scale: 1}).Quantile(0); err == nil {
		t.Error("p=0 quantile should fail")
	}
}

// TestKSAcceptsOwnDistribution: gamma samples from the independent
// reference sampler must pass a KS test against the analytic gamma CDF.
func TestKSAcceptsOwnDistribution(t *testing.T) {
	p := gamma.MustFromVariance(1.39)
	ref := gamma.NewReferenceSampler(p, mt.NewMT19937(2))
	xs := Float32To64(ref.Fill(nil, 50000))
	g, _ := NewGammaDist(p.Alpha, p.Scale)
	res := KSTestOneSample(xs, g.CDF)
	if res.PValue < 0.001 {
		t.Fatalf("reference sampler rejected by KS: D=%g p=%g", res.D, res.PValue)
	}
}

// TestKSRejectsWrongDistribution: the test must have power — normal
// samples against a gamma CDF must fail decisively.
func TestKSRejectsWrongDistribution(t *testing.T) {
	src := normal.Source(normal.ICDFCUDA, mt.NewMT19937(3))
	xs := make([]float64, 0, 20000)
	for len(xs) < 20000 {
		z, ok := src.NextNormal()
		if ok {
			xs = append(xs, float64(z)+1) // shift to overlap the gamma support
		}
	}
	g, _ := NewGammaDist(1/1.39, 1.39)
	res := KSTestOneSample(xs, g.CDF)
	if res.PValue > 1e-6 {
		t.Fatalf("KS failed to reject a wrong distribution: p=%g", res.PValue)
	}
}

// TestKSTwoSampleSelfConsistency: two disjoint streams of the same
// generator pass; generator-vs-reference passes (the Fig. 6 claim);
// different variances fail.
func TestKSTwoSampleSelfConsistency(t *testing.T) {
	const n = 40000
	p := gamma.MustFromVariance(1.39)
	g1 := gamma.NewGenerator(normal.MarsagliaBray, mt.MT19937Params, p, 10)
	g2 := gamma.NewGenerator(normal.ICDFFPGA, mt.MT19937Params, p, 20)
	a := Float32To64(g1.Fill(nil, n))
	b := Float32To64(g2.Fill(nil, n))
	if res := KSTestTwoSample(a, b); res.PValue < 0.001 {
		t.Fatalf("two transforms of same distribution rejected: D=%g p=%g", res.D, res.PValue)
	}
	g3 := gamma.NewGenerator(normal.MarsagliaBray, mt.MT19937Params, gamma.MustFromVariance(2.5), 30)
	c := Float32To64(g3.Fill(nil, n))
	if res := KSTestTwoSample(a, c); res.PValue > 1e-6 {
		t.Fatalf("different variances not rejected: D=%g p=%g", res.D, res.PValue)
	}
}

// TestChi2 validates the chi-square test on matched and mismatched
// categorical data.
func TestChi2(t *testing.T) {
	src := rng.NewSplitMix64(4)
	const n = 100000
	const bins = 16
	obs := make([]int, bins)
	for i := 0; i < n; i++ {
		obs[src.Uint32()>>28]++
	}
	exp := make([]float64, bins)
	for i := range exp {
		exp[i] = float64(n) / bins
	}
	res, err := Chi2GoodnessOfFit(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.001 {
		t.Fatalf("uniform data rejected: chi2=%g p=%g", res.Stat, res.PValue)
	}
	// Skewed expectation must be rejected.
	exp[0] *= 2
	res, _ = Chi2GoodnessOfFit(obs, exp)
	if res.PValue > 1e-6 {
		t.Fatalf("mismatched expectation not rejected: p=%g", res.PValue)
	}
	// Error paths.
	if _, err := Chi2GoodnessOfFit([]int{1}, []float64{1}); err == nil {
		t.Error("single category should fail")
	}
	if _, err := Chi2GoodnessOfFit([]int{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Chi2GoodnessOfFit([]int{1, 2}, []float64{1, 0}); err == nil {
		t.Error("zero expected should fail")
	}
}

// TestHistogram covers binning edges and density normalization.
func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-0.1) // under
	h.Add(0)    // bin 0
	h.Add(9.999999)
	h.Add(10) // over
	h.Add(5)
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 1 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Fatalf("counts %v", h.Counts)
	}
	if h.Total != 5 {
		t.Fatalf("total %d", h.Total)
	}
	if _, err := NewHistogram(1, 1, 10); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins should fail")
	}

	// Density sums (times width) to the in-range fraction.
	sum := 0.0
	for i := range h.Counts {
		sum += h.Density(i) * h.BinWidth()
	}
	if math.Abs(sum-3.0/5.0) > 1e-12 {
		t.Fatalf("density mass %g, want 0.6", sum)
	}
}

// TestHistogramAgainstGammaPDF is the Fig. 6 machinery end to end: the
// pipelined generator's histogram must approach the analytic density as
// samples grow.
func TestHistogramAgainstGammaPDF(t *testing.T) {
	p := gamma.MustFromVariance(1.39)
	gd, _ := NewGammaDist(p.Alpha, p.Scale)
	gen := gamma.NewGenerator(normal.MarsagliaBray, mt.MT19937Params, p, 6)

	errAt := func(n int) float64 {
		h, _ := NewHistogram(0.05, 8, 80)
		h.AddAll(gen.Fill(nil, n))
		return h.MaxDensityError(gd.PDF, 20)
	}
	small := errAt(2000)
	large := errAt(200000)
	if large > small {
		t.Fatalf("density error did not shrink with samples: %g -> %g", small, large)
	}
	if large > 0.05 {
		t.Fatalf("density error at 200k samples too large: %g", large)
	}
}

// TestECDF basic behaviour and agreement with the analytic CDF.
func TestECDF(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2})
	for _, tc := range []struct{ x, want float64 }{
		{0.5, 0}, {1, 1.0 / 3}, {1.5, 1.0 / 3}, {2, 2.0 / 3}, {3, 1}, {4, 1},
	} {
		if got := e.At(tc.x); math.Abs(got-tc.want) > 1e-15 {
			t.Errorf("ECDF(%g)=%g want %g", tc.x, got, tc.want)
		}
	}
	if e.Len() != 3 {
		t.Errorf("len %d", e.Len())
	}
}

// TestComputeMoments on a known sample.
func TestComputeMoments(t *testing.T) {
	m := ComputeMoments([]float64{1, 2, 3, 4})
	if m.N != 4 || m.Mean != 2.5 || math.Abs(m.Variance-1.25) > 1e-15 {
		t.Fatalf("moments %+v", m)
	}
	if m.Min != 1 || m.Max != 4 {
		t.Fatalf("min/max %g/%g", m.Min, m.Max)
	}
	if math.Abs(m.Skew) > 1e-12 {
		t.Fatalf("symmetric sample has skew %g", m.Skew)
	}
	if z := ComputeMoments(nil); z.N != 0 {
		t.Fatal("empty sample")
	}
}

func BenchmarkRegularizedGammaP(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += RegularizedGammaP(0.719, float64(i%100)/10+0.01)
	}
	_ = sink
}

func BenchmarkKSTestOneSample(b *testing.B) {
	p := gamma.MustFromVariance(1.39)
	ref := gamma.NewReferenceSampler(p, mt.NewMT19937(2))
	xs := Float32To64(ref.Fill(nil, 10000))
	g, _ := NewGammaDist(p.Alpha, p.Scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSTestOneSample(xs, g.CDF)
	}
}

// TestAndersonDarlingAcceptsAndRejects: AD accepts its own distribution,
// rejects a tail-corrupted sample that KS barely notices, and the
// critical-value table behaves.
func TestAndersonDarling(t *testing.T) {
	p := gamma.MustFromVariance(1.39)
	g, _ := NewGammaDist(p.Alpha, p.Scale)
	ref := gamma.NewReferenceSampler(p, mt.NewMT19937(9))
	xs := Float32To64(ref.Fill(nil, 20000))

	res, err := ADTestOneSample(xs, g.CDF)
	if err != nil {
		t.Fatal(err)
	}
	rej, err := res.RejectAt(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if rej {
		t.Fatalf("AD rejected the correct distribution: A2=%g", res.A2)
	}

	// Corrupt the tail: clamp the top 2% of the sample.
	bad := append([]float64(nil), xs...)
	q, _ := g.Quantile(0.98)
	for i := range bad {
		if bad[i] > q {
			bad[i] = q
		}
	}
	res2, err := ADTestOneSample(bad, g.CDF)
	if err != nil {
		t.Fatal(err)
	}
	rej2, _ := res2.RejectAt(0.01)
	if !rej2 {
		t.Fatalf("AD missed a clamped tail: A2=%g", res2.A2)
	}

	// Error paths.
	if _, err := ADTestOneSample(xs[:3], g.CDF); err == nil {
		t.Error("n<5 should fail")
	}
	if _, err := res.RejectAt(0.5); err == nil {
		t.Error("untabulated alpha should fail")
	}
}
