package stats

import (
	"fmt"
	"math"
	"sort"
)

// ADResult is an Anderson-Darling goodness-of-fit statistic. The AD test
// weights the CDF discrepancy by 1/(F(1−F)), making it far more sensitive
// to tail mismatches than Kolmogorov-Smirnov — exactly where a broken
// gamma sampler (e.g. a truncated correction term or a mis-gated
// Mersenne-Twister) would show first.
type ADResult struct {
	A2 float64 // the A² statistic
	N  int
}

// adCritical holds case-0 (fully specified distribution) asymptotic
// critical values of A² (Stephens 1974), valid for n ≳ 5.
var adCritical = []struct {
	alpha float64
	value float64
}{
	{0.15, 1.610},
	{0.10, 1.933},
	{0.05, 2.492},
	{0.025, 3.070},
	{0.01, 3.857},
}

// ADTestOneSample computes A² of xs against the fully specified CDF.
// Observations mapping to F(x) of exactly 0 or 1 (beyond double
// precision) are clamped one ulp inward, as is conventional.
func ADTestOneSample(xs []float64, cdf func(float64) float64) (ADResult, error) {
	n := len(xs)
	if n < 5 {
		return ADResult{}, fmt.Errorf("stats: Anderson-Darling needs n ≥ 5, got %d", n)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	const eps = 1e-300
	sum := 0.0
	for i := 0; i < n; i++ {
		fi := cdf(s[i])
		fj := cdf(s[n-1-i])
		if fi <= 0 {
			fi = eps
		}
		if fi >= 1 {
			fi = 1 - 1e-16
		}
		if fj >= 1 {
			fj = 1 - 1e-16
		}
		if fj <= 0 {
			fj = eps
		}
		sum += float64(2*i+1) * (math.Log(fi) + math.Log(1-fj))
	}
	a2 := -float64(n) - sum/float64(n)
	return ADResult{A2: a2, N: n}, nil
}

// RejectAt reports whether the statistic exceeds the case-0 critical
// value at significance level alpha (one of 0.15, 0.10, 0.05, 0.025,
// 0.01; other levels return an error).
func (r ADResult) RejectAt(alpha float64) (bool, error) {
	for _, c := range adCritical {
		if math.Abs(c.alpha-alpha) < 1e-12 {
			return r.A2 > c.value, nil
		}
	}
	return false, fmt.Errorf("stats: no Anderson-Darling critical value tabulated for α=%g", alpha)
}
