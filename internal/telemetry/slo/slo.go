// Package slo computes multi-window burn rates over cumulative
// good/bad event counters — the SRE-style objective plane the serve
// path surfaces on /healthz and /snapshot.
//
// The model: an objective ("99% of jobs finish under 500 ms without
// error") defines an error budget of 1−target. The burn rate over a
// window is the observed bad fraction divided by that budget: burn 1.0
// consumes the budget exactly at the sustainable rate, burn 10 exhausts
// a 30-day budget in 3 days. Alerting on ONE window forces a bad trade
// (short = noisy, long = slow); the standard fix is to require BOTH a
// short and a long window to burn hot — the short window proves the
// problem is happening *now*, the long window proves it is not a blip.
// That is exactly what Degraded reports.
//
// The tracker is deliberately counter-based: the caller already owns
// cumulative good/bad counters (the serve scheduler's per-terminal
// accounting), and Evaluate samples them on demand. No background
// goroutine, no clock subscription — an unobserved tracker costs
// nothing, and a nil *Tracker is the disabled implementation.
package slo

import (
	"fmt"
	"sync"
	"time"
)

// Config parameterizes a Tracker. Zero fields select defaults.
type Config struct {
	// Name labels the objective in Status and logs.
	Name string
	// Target is the objective success ratio in (0, 1) (default 0.99).
	// The error budget is 1 − Target.
	Target float64
	// ShortWindow and LongWindow are the two burn-rate windows
	// (defaults 5m and 1h). Short catches "it is on fire right now";
	// long filters blips.
	ShortWindow time.Duration
	LongWindow  time.Duration
	// BurnThreshold is the rate at or above which BOTH windows must
	// burn for Degraded (default 1.0 — consuming budget faster than
	// sustainable).
	BurnThreshold float64

	// now is the injectable clock (tests); nil selects time.Now.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "slo"
	}
	if c.Target == 0 {
		c.Target = 0.99
	}
	if c.ShortWindow == 0 {
		c.ShortWindow = 5 * time.Minute
	}
	if c.LongWindow == 0 {
		c.LongWindow = time.Hour
	}
	if c.LongWindow < c.ShortWindow {
		c.LongWindow = c.ShortWindow
	}
	if c.BurnThreshold == 0 {
		c.BurnThreshold = 1.0
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// sample is one observation of the cumulative counters.
type sample struct {
	t    time.Time
	good int64
	bad  int64
}

// Tracker evaluates one objective. All methods are nil-receiver safe.
type Tracker struct {
	cfg Config

	mu      sync.Mutex
	samples []sample // time-ordered observations, pruned past LongWindow
}

// New builds a tracker for cfg. The tracker is seeded with a zero
// observation at construction time: events counted before the first
// Evaluate call burn against that origin, so a service that fails from
// startup degrades on its very first probe instead of silently using
// its own first (already-bad) sample as the baseline.
func New(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	return &Tracker{cfg: cfg, samples: []sample{{t: cfg.now()}}}
}

// Status is one objective evaluation — the /snapshot "slo" shape.
type Status struct {
	Name   string  `json:"name"`
	Target float64 `json:"target"`
	// Good and Bad are the cumulative counts at evaluation time.
	Good int64 `json:"good"`
	Bad  int64 `json:"bad"`
	// BurnShort and BurnLong are the burn rates over the two windows
	// (1.0 = consuming error budget exactly at the sustainable rate).
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	// ShortWindowS and LongWindowS name the window lengths in seconds,
	// so a dashboard reading one snapshot needs no config lookup.
	ShortWindowS int64 `json:"short_window_s"`
	LongWindowS  int64 `json:"long_window_s"`
	// Degraded is true when BOTH windows burn at or above the
	// threshold; Reason says why in one line ("" while healthy).
	Degraded bool   `json:"degraded"`
	Reason   string `json:"reason,omitempty"`
}

// Evaluate records a fresh observation of the cumulative good/bad
// counters and returns the multi-window status. Counters must be
// monotone; a caller handing in decreasing values gets clamped deltas,
// not a panic. On a nil tracker it returns a zero (healthy) Status.
func (t *Tracker) Evaluate(good, bad int64) Status {
	if t == nil {
		return Status{}
	}
	now := t.cfg.now()
	t.mu.Lock()
	defer t.mu.Unlock()

	t.samples = append(t.samples, sample{t: now, good: good, bad: bad})
	// Prune to the long window, always keeping one sample at or past
	// the horizon so the long-window delta has a baseline.
	horizon := now.Add(-t.cfg.LongWindow)
	cut := 0
	for cut < len(t.samples)-1 && !t.samples[cut+1].t.After(horizon) {
		cut++
	}
	t.samples = t.samples[cut:]

	st := Status{
		Name:         t.cfg.Name,
		Target:       t.cfg.Target,
		Good:         good,
		Bad:          bad,
		ShortWindowS: int64(t.cfg.ShortWindow.Seconds()),
		LongWindowS:  int64(t.cfg.LongWindow.Seconds()),
	}
	cur := t.samples[len(t.samples)-1]
	st.BurnShort = t.burnLocked(cur, now.Add(-t.cfg.ShortWindow))
	st.BurnLong = t.burnLocked(cur, horizon)
	if st.BurnShort >= t.cfg.BurnThreshold && st.BurnLong >= t.cfg.BurnThreshold {
		st.Degraded = true
		st.Reason = fmt.Sprintf("%s burn rate %.2fx over %s and %.2fx over %s (threshold %.2fx, target %.3f)",
			t.cfg.Name, st.BurnShort, t.cfg.ShortWindow, st.BurnLong, t.cfg.LongWindow,
			t.cfg.BurnThreshold, t.cfg.Target)
	}
	return st
}

// burnLocked computes the burn rate between the newest sample and the
// baseline sample for a window starting at `since` (caller holds mu).
// The baseline is the latest sample at or before the window start —
// with sparse observations the effective window is a little wider,
// never narrower, which biases toward the long-run rate rather than
// amplifying a single recent event.
func (t *Tracker) burnLocked(cur sample, since time.Time) float64 {
	base := t.samples[0]
	for _, s := range t.samples {
		if s.t.After(since) {
			break
		}
		base = s
	}
	dGood := cur.good - base.good
	dBad := cur.bad - base.bad
	if dGood < 0 {
		dGood = 0
	}
	if dBad < 0 {
		dBad = 0
	}
	total := dGood + dBad
	if total == 0 || dBad == 0 {
		return 0
	}
	badFrac := float64(dBad) / float64(total)
	budget := 1 - t.cfg.Target
	if budget <= 0 {
		// A 100% target has no budget: any bad event is an infinite
		// burn; report a large finite rate instead of +Inf (JSON-safe).
		return 1e9
	}
	return badFrac / budget
}
