// Package core implements the paper's primary contribution: fully
// decoupled OpenCL work-items on an FPGA-style dataflow substrate.
//
// The structure mirrors the paper's listings one to one:
//
//   - Engine / DecoupledWorkItems (Listing 1): N independent
//     compute+transfer pairs, each with its own streams and its own
//     pointer (offset) into device global memory, scheduled in parallel
//     as a DATAFLOW region.
//   - gammaRNG (Listing 2): the single fully pipelined block computing,
//     correcting and only afterwards validating each gamma candidate,
//     with the delayed-counter MAINLOOP exit.
//   - Transfer (Listing 4): reading the work-item's stream, packing 16
//     single-precision values into 512-bit words, and issuing fixed-
//     length bursts at the work-item's own offset (device-level buffer
//     combining, Section III-E-2).
//
// The engine is *functional*: it produces the actual gamma data the
// validation layer (Fig. 6) and the CreditRisk+ application consume.
// Timing is modelled separately by internal/fpga from the statistics this
// engine records (cycles, rejection rates, burst counts).
package core

// WordRNs is the packing factor of the 512-bit memory interface: 16
// single-precision values per beat (Listing 4's g512 / the float16 of an
// NDRange kernel).
const WordRNs = 16

// Word512 is one 512-bit beat of packed gamma values.
type Word512 [WordRNs]float32

// Packer512 accumulates single values into 512-bit beats — the g512
// helper of Listing 4. Push returns a completed word and tFlag=true every
// WordRNs-th value.
type Packer512 struct {
	buf  Word512
	fill int
}

// Push adds one value; when the word completes it is returned with
// ok=true and the packer resets.
func (p *Packer512) Push(v float32) (w Word512, ok bool) {
	p.buf[p.fill] = v
	p.fill++
	if p.fill == WordRNs {
		p.fill = 0
		return p.buf, true
	}
	return Word512{}, false
}

// Pending returns how many values are buffered in the incomplete word.
func (p *Packer512) Pending() int { return p.fill }

// Flush returns the incomplete word (zero-padded) and resets; ok is false
// when nothing was pending. Hardware designs size their loops so this
// never fires; the engine uses it only to guard imperfectly divisible
// workloads.
func (p *Packer512) Flush() (w Word512, ok bool) {
	if p.fill == 0 {
		return Word512{}, false
	}
	w = p.buf
	for i := p.fill; i < WordRNs; i++ {
		w[i] = 0
	}
	p.fill = 0
	return w, true
}
