package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	decwi "github.com/decwi/decwi"
)

// testServer wires a scheduler into an httptest server and returns a
// cleanup that drains both.
func testServer(t *testing.T, cfg Config) (*httptest.Server, *Scheduler) {
	t.Helper()
	sched := New(cfg)
	ts := httptest.NewServer(NewServer(sched).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := sched.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return ts, sched
}

// postJob submits a spec and returns the response status plus decoded
// body (JobStatus on 2xx, errorBody otherwise).
func postJob(t *testing.T, ts *httptest.Server, path string, spec any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// runJobOverHTTP submits a spec, long-polls to terminal, and downloads
// the result payload.
func runJobOverHTTP(t *testing.T, ts *httptest.Server, path string, spec JobSpec) (JobStatus, []byte) {
	t.Helper()
	resp, body := postJob(t, ts, path, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit body: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never terminal (state %s)", st.ID, st.State)
		}
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "?wait=2s")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status poll: %d: %s", r.StatusCode, b)
		}
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != StateDone {
		t.Fatalf("job %s ended %s (%s)", st.ID, st.State, st.Error)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	payload, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result: %d: %s", r.StatusCode, payload)
	}
	if got := r.Header.Get("X-Decwi-Sha256"); got != st.SHA256 {
		t.Fatalf("result digest header %q != status digest %q", got, st.SHA256)
	}
	if got := digest(payload); got != st.SHA256 {
		t.Fatalf("payload digest %s != advertised %s", got, st.SHA256)
	}
	return st, payload
}

// TestServerReplayDeterminism is the tentpole acceptance test: the same
// (config, seed, options) tuple submitted twice over HTTP returns
// bitwise-identical payloads, and those bytes equal the sequential
// Generate output — the engine's sequential-equivalence guarantee
// extended across the network boundary, for two Table I configs.
func TestServerReplayDeterminism(t *testing.T) {
	ts, _ := testServer(t, Config{Executors: 2})
	for _, cfg := range []int{2, 3} {
		t.Run(fmt.Sprintf("config%d", cfg), func(t *testing.T) {
			spec := JobSpec{
				Config: cfg, Seed: 7, Scenarios: 30000, Sectors: 2,
				Workers: 2, ChunkWorkItems: 1,
			}
			st1, p1 := runJobOverHTTP(t, ts, "/v1/generate", spec)
			st2, p2 := runJobOverHTTP(t, ts, "/v1/generate", spec)
			if st1.SHA256 != st2.SHA256 || !bytes.Equal(p1, p2) {
				t.Fatalf("replay diverged: %s vs %s", st1.SHA256, st2.SHA256)
			}
			// The replay was also a cache hit — the byte-equality above is
			// therefore exactly the cached-vs-fresh acceptance check.
			if !st2.Cached {
				t.Fatalf("second submission of the same tuple not served from the cache: %+v", st2)
			}
			seq, err := decwi.Generate(decwi.ConfigID(cfg), decwi.GenerateOptions{
				Scenarios: 30000, Sectors: 2, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if want := encodeFloat32LE(seq.Values); !bytes.Equal(p1, want) {
				t.Fatalf("served payload diverges from sequential Generate (%d vs %d bytes, digest %s vs %s)",
					len(p1), len(want), digest(p1), digest(want))
			}
		})
	}
}

// TestServerStreamOffsetReplay: the (seed, stream_offset) pair is the
// checkpoint tuple — a spec resubmitted with the saved offset replays
// exactly the later stream window, byte-identical to the library run at
// that offset and distinct from the offset-0 window.
func TestServerStreamOffsetReplay(t *testing.T) {
	ts, _ := testServer(t, Config{Executors: 1})
	spec := JobSpec{Config: 2, Seed: 7, Scenarios: 20000, Sectors: 2, Workers: 2}
	_, base := runJobOverHTTP(t, ts, "/v1/generate", spec)

	spec.StreamOffset = 4099
	st1, p1 := runJobOverHTTP(t, ts, "/v1/generate", spec)
	st2, p2 := runJobOverHTTP(t, ts, "/v1/generate", spec)
	if st1.SHA256 != st2.SHA256 || !bytes.Equal(p1, p2) {
		t.Fatalf("offset replay diverged: %s vs %s", st1.SHA256, st2.SHA256)
	}
	if bytes.Equal(p1, base) {
		t.Fatal("stream_offset=4099 returned the offset-0 window")
	}
	seq, err := decwi.Generate(decwi.Config2, decwi.GenerateOptions{
		Scenarios: 20000, Sectors: 2, Seed: 7, StreamOffset: 4099,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := encodeFloat32LE(seq.Values); !bytes.Equal(p1, want) {
		t.Fatalf("served offset payload diverges from the library at the same offset (digest %s vs %s)",
			digest(p1), digest(want))
	}
}

// TestServerRiskReplay: a risk job is replayable too (same seeded
// Monte-Carlo → byte-identical report JSON), and the report carries the
// analytic cross-checks.
func TestServerRiskReplay(t *testing.T) {
	ts, _ := testServer(t, Config{Executors: 1})
	spec := JobSpec{Config: 2, Seed: 3, Scenarios: 400, Sectors: 2, Workers: 1, Obligors: 30}
	_, p1 := runJobOverHTTP(t, ts, "/v1/risk", spec)
	_, p2 := runJobOverHTTP(t, ts, "/v1/risk", spec)
	if !bytes.Equal(p1, p2) {
		t.Fatal("risk replay diverged")
	}
	var rep decwi.RiskReport
	if err := json.Unmarshal(p1, &rep); err != nil {
		t.Fatalf("risk payload is not a RiskReport: %v", err)
	}
	if rep.Scenarios != 400 || rep.AnalyticEL <= 0 || rep.VaR999 <= 0 {
		t.Fatalf("implausible risk report: %+v", rep)
	}
}

// TestServerValidationErrors mirrors options_test.go through the
// network path: every malformed scheduling knob or workload must come
// back as a clean 400 with a JSON error body — never a panic, never a
// silently clamped replay tuple.
func TestServerValidationErrors(t *testing.T) {
	ts, _ := testServer(t, Config{})
	base := func() map[string]any {
		return map[string]any{"config": 3, "scenarios": 1000, "workers": 1}
	}
	for _, tc := range []struct {
		name string
		path string
		edit func(m map[string]any)
		want string // error substring
	}{
		{"zero workers", "/v1/generate", func(m map[string]any) { m["workers"] = 0 }, "workers 0"},
		{"negative workers", "/v1/generate", func(m map[string]any) { m["workers"] = -3 }, "workers -3"},
		{"workers beyond cap", "/v1/generate", func(m map[string]any) { m["workers"] = 64 }, "per-job cap"},
		{"shards beyond work-items", "/v1/generate", func(m map[string]any) { m["shards"] = 9 }, "shards 9 exceeds"},
		{"negative shards", "/v1/generate", func(m map[string]any) { m["shards"] = -1 }, "shards -1"},
		{"oversized chunk", "/v1/generate", func(m map[string]any) { m["chunk_work_items"] = 99 }, "chunk_work_items 99"},
		{"negative chunk", "/v1/generate", func(m map[string]any) { m["chunk_work_items"] = -2 }, "chunk_work_items -2"},
		{"unknown config", "/v1/generate", func(m map[string]any) { m["config"] = 9 }, "config 9"},
		{"zero scenarios", "/v1/generate", func(m map[string]any) { m["scenarios"] = 0 }, "scenarios 0"},
		{"oversized workload", "/v1/generate", func(m map[string]any) { m["scenarios"] = int64(1) << 40 }, "server cap"},
		{"overflowing workload", "/v1/generate", func(m map[string]any) {
			// scenarios·sectors wraps int64 to 0; the cap check must
			// reject on the pre-multiplication values, not the wrap.
			m["scenarios"] = int64(1) << 62
			m["sectors"] = 4
		}, "server cap"},
		{"negative sectors", "/v1/generate", func(m map[string]any) { m["sectors"] = -2 }, "sectors -2"},
		{"variances mismatch", "/v1/generate", func(m map[string]any) { m["variances"] = []float64{1, 2, 3} }, "variances has 3"},
		{"non-finite variance", "/v1/generate", func(m map[string]any) { m["variance"] = -1.0 }, "variance -1"},
		{"bad tenant", "/v1/generate", func(m map[string]any) { m["tenant"] = "Tenant!" }, "tenant"},
		{"negative timeout", "/v1/generate", func(m map[string]any) { m["timeout_ms"] = -5 }, "timeout_ms -5"},
		{"unknown field", "/v1/generate", func(m map[string]any) { m["wrokers"] = 2 }, "unknown field"},
		{"kind mismatch", "/v1/risk", func(m map[string]any) { m["kind"] = "generate" }, "does not match"},
		{"risk with variances", "/v1/risk", func(m map[string]any) {
			m["sectors"] = 2
			m["variances"] = []float64{1, 2}
		}, "scalar variance"},
		{"risk bad pd", "/v1/risk", func(m map[string]any) { m["pd"] = 1.5 }, "pd 1.5"},
		{"risk with stream offset", "/v1/risk", func(m map[string]any) { m["stream_offset"] = 4099 }, "stream_offset"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := base()
			tc.edit(m)
			resp, body := postJob(t, ts, tc.path, m)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d (%s), want 400", resp.StatusCode, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body is not JSON: %s", body)
			}
			if !strings.Contains(eb.Error, tc.want) {
				t.Fatalf("error %q does not mention %q", eb.Error, tc.want)
			}
		})
	}
}

// TestServerBackpressure: a saturated queue answers 429 with a
// Retry-After hint; a draining scheduler answers 503.
func TestServerBackpressure(t *testing.T) {
	hook, release := parkedHook()
	ts, sched := testServer(t, Config{Executors: 1, QueueDepth: 1, runHook: hook})
	defer release()

	// First job parks in the executor, second fills the queue. Wait for
	// the executor to claim the first before filling the queue, or the
	// second submission would race against the dequeue.
	resp1, body1 := postJob(t, ts, "/v1/generate", seeded(1))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: %d %s", resp1.StatusCode, body1)
	}
	var first JobStatus
	if err := json.Unmarshal(body1, &first); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sched.Get(first.ID).Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, body := postJob(t, ts, "/v1/generate", seeded(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: %d %s", resp.StatusCode, body)
	}
	resp, body := postJob(t, ts, "/v1/generate", seeded(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	go sched.Drain(context.Background())
	for !sched.Draining() {
		time.Sleep(time.Millisecond)
	}
	resp, body = postJob(t, ts, "/v1/generate", seeded(4))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	release()
}

// TestServerJobLifecycle: unknown IDs 404, a running job's result is
// 202, DELETE cancels it (result becomes 409), and a second DELETE
// evicts the record (404 afterwards).
func TestServerJobLifecycle(t *testing.T) {
	hook, release := parkedHook()
	ts, _ := testServer(t, Config{Executors: 1, runHook: hook})
	defer release()

	if r, err := http.Get(ts.URL + "/v1/jobs/j-00009999"); err != nil || r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status: %v %v", r.StatusCode, err)
	}

	resp, body := postJob(t, ts, "/v1/generate", genSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location %q", loc)
	}

	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("result of live job: %d, want 202", r.StatusCode)
	}

	del := func() int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(); code != http.StatusNoContent {
		t.Fatalf("cancel DELETE: %d", code)
	}
	// Long-poll until the cancellation lands, then the result is gone.
	r, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "?wait=5s")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("state %s after cancel", st.State)
	}
	r, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("result of cancelled job: %d, want 409", r.StatusCode)
	}
	if code := del(); code != http.StatusNoContent {
		t.Fatalf("evict DELETE: %d", code)
	}
	if r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID); err != nil || r.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job status: %v %v", r.StatusCode, err)
	}
}

// TestServerResultDigestStability: X-Decwi-Sha256 is fixed once at job
// completion and only echoed by downloads — repeated GETs of one result
// must carry the identical header, matching both the status digest and
// the actual body bytes every time. (The header used to be re-hashed
// from the payload on every download.)
func TestServerResultDigestStability(t *testing.T) {
	ts, _ := testServer(t, Config{Executors: 1})
	spec := JobSpec{Config: 2, Seed: 13, Scenarios: 25000, Sectors: 2, Workers: 2}
	st, first := runJobOverHTTP(t, ts, "/v1/generate", spec)
	for i := 0; i < 3; i++ {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Header.Get("X-Decwi-Sha256"); got != st.SHA256 {
			t.Fatalf("download %d header %s != completion digest %s", i, got, st.SHA256)
		}
		if !bytes.Equal(body, first) {
			t.Fatalf("download %d body diverged", i)
		}
		if got := digest(body); got != st.SHA256 {
			t.Fatalf("download %d body digest %s != header %s", i, got, st.SHA256)
		}
	}
}

// TestServerDrainUnderRealLoad is the end-to-end drain acceptance test
// with real engine jobs (no hook): drain with jobs in flight completes
// every admitted job and leaks nothing.
func TestServerDrainUnderRealLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	sched := New(Config{Executors: 2, QueueDepth: 32})
	ts := httptest.NewServer(NewServer(sched).Handler())

	var ids []string
	for i := 0; i < 8; i++ {
		spec := JobSpec{Config: 2, Seed: uint64(i + 1), Scenarios: 20000, Workers: 1}
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, b)
		}
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sched.Drain(ctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	for _, id := range ids {
		j := sched.Get(id)
		if j == nil {
			t.Fatalf("job %s evicted before inspection", id)
		}
		if st := j.Status(); st.State != StateDone {
			t.Errorf("job %s ended %s (%s), want done", id, st.State, st.Error)
		}
	}
	ts.Close()
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
