package perf

import (
	"fmt"
	"time"

	"github.com/decwi/decwi/internal/fpga"
	"github.com/decwi/decwi/internal/rng/normal"
)

// Table3Row is one row of the paper's Table III: a configuration (and,
// for the ICDF configurations, an implementation style on the fixed
// platforms) with the four platform runtimes.
type Table3Row struct {
	Config KernelConfig
	Style  ICDFStyle
	// CPU, GPU, PHI are the fixed-platform model predictions; FPGA is
	// the fpga-device model (identical across ICDF styles — the FPGA
	// always runs the bit-level unit).
	CPU, GPU, PHI, FPGA time.Duration
}

// Label renders the row header as in the paper ("Config3: ICDF
// CUDA-style").
func (r Table3Row) Label() string {
	if r.Style == ICDFStyleNone {
		return r.Config.Name
	}
	return fmt.Sprintf("%s: ICDF %s", r.Config.Name, r.Style)
}

// FPGABurstRNs is the final design's burst length (4 beats of 16 values —
// Listing 4's SXTRANSF).
const FPGABurstRNs = 64

// Table3 regenerates the paper's Table III for the given workload
// (PaperWorkload for the published numbers): six rows — Config1, Config2,
// and both ICDF styles of Config3 and Config4.
func Table3(w fpga.Workload) ([]Table3Row, error) {
	dev := fpga.DefaultDevice()
	var rows []Table3Row

	addRow := func(c KernelConfig, style ICDFStyle) error {
		row := Table3Row{Config: c, Style: style}
		for _, p := range FixedPlatforms {
			d, err := p.TunedRuntime(w, c, style)
			if err != nil {
				return err
			}
			switch p.Name {
			case "CPU":
				row.CPU = d.Runtime
			case "GPU":
				row.GPU = d.Runtime
			case "PHI":
				row.PHI = d.Runtime
			}
		}
		ft, err := dev.KernelRuntime(w, c.FPGAWorkItems, MeasuredIters(c.Transform).RejectionRate, FPGABurstRNs)
		if err != nil {
			return err
		}
		row.FPGA = ft.Runtime
		rows = append(rows, row)
		return nil
	}

	for _, c := range AllConfigs {
		if c.Transform == normal.MarsagliaBray {
			if err := addRow(c, ICDFStyleNone); err != nil {
				return nil, err
			}
			continue
		}
		for _, style := range []ICDFStyle{ICDFStyleCUDA, ICDFStyleFPGA} {
			if err := addRow(c, style); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// PaperTable3 holds the published Table III values in milliseconds, used
// by tests and EXPERIMENTS.md for side-by-side reporting.
var PaperTable3 = []struct {
	Label               string
	CPU, GPU, PHI, FPGA float64 // ms; 0 marks “not reported”
}{
	{"Config1", 3825, 2479, 996, 701},
	{"Config2", 3883, 1011, 696, 701},
	{"Config3: ICDF CUDA-style", 807, 1177, 555, 642},
	{"Config3: ICDF FPGA-style", 2794, 1181, 2435, 642},
	{"Config4: ICDF CUDA-style", 839, 522, 460, 642},
	{"Config4: ICDF FPGA-style", 2776, 521, 2294, 642},
}
