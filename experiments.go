package decwi

import (
	"fmt"
	"strings"
	"time"

	"github.com/decwi/decwi/internal/fpga"
	"github.com/decwi/decwi/internal/perf"
	"github.com/decwi/decwi/internal/power"
	"github.com/decwi/decwi/internal/simt"
	"github.com/decwi/decwi/internal/stats"
)

// This file is the experiment API: one function per table/figure of the
// paper's evaluation section, each returning structured rows plus a
// Render method for the CLI harness. PaperWorkload is the Section IV-B
// setup (2,621,440 scenarios × 240 sectors ≈ 2.5 GB).

// PaperScenarios and PaperSectors are the Section IV-B workload.
const (
	PaperScenarios = 2621440
	PaperSectors   = 240
)

func paperWorkload() fpga.Workload { return fpga.PaperWorkload }

// ResourceRow is one column of Table II.
type ResourceRow struct {
	Config            string
	WorkItems         int
	SlicePct          float64
	DSPPct            float64
	BRAMPct           float64
	CorrectedSlicePct float64
	LimitedBy         string
}

// TableII regenerates the FPGA place-and-route utilization report.
func TableII() ([]ResourceRow, error) {
	var rows []ResourceRow
	for _, c := range AllConfigs {
		k, err := c.kernel()
		if err != nil {
			return nil, err
		}
		rep, err := fpga.PlaceAndRoute(k.Transform, k.MTParams, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ResourceRow{
			Config: k.Name, WorkItems: rep.WorkItems,
			SlicePct: rep.SlicePct, DSPPct: rep.DSPPct, BRAMPct: rep.BRAMPct,
			CorrectedSlicePct: rep.CorrectedSlicePct, LimitedBy: rep.LimitingResource,
		})
	}
	return rows, nil
}

// RenderTableII formats Table II with the paper's values side by side.
func RenderTableII(rows []ResourceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: FPGA P&R resources utilization (model vs paper)\n")
	fmt.Fprintf(&b, "%-8s %3s  %14s  %14s  %14s  %s\n", "Config", "WI", "Slice%", "DSP%", "BRAM%", "limit")
	paper := [][3]float64{{53.43, 23.67, 20.31}, {52.75, 23.67, 20.31}, {52.92, 21.56, 24.05}, {52.72, 21.56, 24.05}}
	for i, r := range rows {
		fmt.Fprintf(&b, "%-8s %3d  %6.2f (%5.2f)  %6.2f (%5.2f)  %6.2f (%5.2f)  %s\n",
			r.Config, r.WorkItems,
			r.SlicePct, paper[i][0], r.DSPPct, paper[i][1], r.BRAMPct, paper[i][2], r.LimitedBy)
	}
	return b.String()
}

// PnRSweep returns the resource utilization at each feasible work-item
// count for configuration c, ending at the place-and-route limit — the
// paper's iterative fitting procedure made visible (Section IV-C).
func PnRSweep(c ConfigID) ([]ResourceRow, error) {
	k, err := c.kernel()
	if err != nil {
		return nil, err
	}
	limit, err := fpga.PlaceAndRoute(k.Transform, k.MTParams, 0)
	if err != nil {
		return nil, err
	}
	var rows []ResourceRow
	for n := 1; n <= limit.WorkItems; n++ {
		rep, err := fpga.PlaceAndRoute(k.Transform, k.MTParams, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ResourceRow{
			Config: k.Name, WorkItems: rep.WorkItems,
			SlicePct: rep.SlicePct, DSPPct: rep.DSPPct, BRAMPct: rep.BRAMPct,
			CorrectedSlicePct: rep.CorrectedSlicePct, LimitedBy: rep.LimitingResource,
		})
	}
	return rows, nil
}

// RuntimeRow is one row of Table III.
type RuntimeRow struct {
	Label               string
	CPU, GPU, PHI, FPGA time.Duration
	// Paper values in ms for side-by-side reporting.
	PaperCPU, PaperGPU, PaperPHI, PaperFPGA float64
}

// TableIII regenerates the runtime comparison.
func TableIII() ([]RuntimeRow, error) {
	rows, err := perf.Table3(paperWorkload())
	if err != nil {
		return nil, err
	}
	out := make([]RuntimeRow, len(rows))
	for i, r := range rows {
		out[i] = RuntimeRow{
			Label: r.Label(), CPU: r.CPU, GPU: r.GPU, PHI: r.PHI, FPGA: r.FPGA,
			PaperCPU: perf.PaperTable3[i].CPU, PaperGPU: perf.PaperTable3[i].GPU,
			PaperPHI: perf.PaperTable3[i].PHI, PaperFPGA: perf.PaperTable3[i].FPGA,
		}
	}
	return out, nil
}

// RenderTableIII formats Table III, model (paper) per cell, in ms.
func RenderTableIII(rows []RuntimeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: runtime [ms], model (paper)\n")
	fmt.Fprintf(&b, "%-28s %12s %12s %12s %12s\n", "Setup", "CPU", "GPU", "PHI", "FPGA")
	ms := func(d time.Duration) float64 { return d.Seconds() * 1000 }
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %5.0f (%4.0f) %5.0f (%4.0f) %5.0f (%4.0f) %5.0f (%4.0f)\n",
			r.Label, ms(r.CPU), r.PaperCPU, ms(r.GPU), r.PaperGPU,
			ms(r.PHI), r.PaperPHI, ms(r.FPGA), r.PaperFPGA)
	}
	return b.String()
}

// SweepPoint is one sample of the Fig. 5 sweeps.
type SweepPoint struct {
	Platform string
	Config   string
	X        int
	Runtime  time.Duration
}

// Fig5a regenerates the runtime-vs-localSize sweep (Config1 and Config3,
// globalSize 65536).
func Fig5a(localSizes []int) ([]SweepPoint, error) {
	if len(localSizes) == 0 {
		localSizes = []int{2, 4, 8, 16, 32, 64, 128, 256}
	}
	pts, err := perf.LocalSizeSweep(paperWorkload(), []perf.KernelConfig{perf.Config1, perf.Config3}, localSizes)
	if err != nil {
		return nil, err
	}
	return convertSweep(pts), nil
}

// Fig5b regenerates the runtime-vs-globalSize sweep at optimal localSize.
func Fig5b(globalSizes []int) ([]SweepPoint, error) {
	if len(globalSizes) == 0 {
		globalSizes = []int{1024, 4096, 16384, 65536, 262144}
	}
	pts, err := perf.GlobalSizeSweep(paperWorkload(), []perf.KernelConfig{perf.Config1, perf.Config3}, globalSizes)
	if err != nil {
		return nil, err
	}
	return convertSweep(pts), nil
}

func convertSweep(pts []perf.Fig5Point) []SweepPoint {
	out := make([]SweepPoint, len(pts))
	for i, p := range pts {
		out[i] = SweepPoint{Platform: p.Platform, Config: p.Config, X: p.X, Runtime: p.Runtime}
	}
	return out
}

// RenderSweep formats a Fig. 5 sweep as an x-by-series table.
func RenderSweep(title, xlabel string, pts []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	series := map[string][]SweepPoint{}
	var order []string
	for _, p := range pts {
		key := p.Platform + "/" + p.Config
		if _, seen := series[key]; !seen {
			order = append(order, key)
		}
		series[key] = append(series[key], p)
	}
	fmt.Fprintf(&b, "%-14s", xlabel)
	for _, k := range order {
		fmt.Fprintf(&b, " %14s", k)
	}
	fmt.Fprintln(&b)
	if len(order) == 0 {
		return b.String()
	}
	for i := range series[order[0]] {
		fmt.Fprintf(&b, "%-14d", series[order[0]][i].X)
		for _, k := range order {
			fmt.Fprintf(&b, " %11.0f ms", series[k][i].Runtime.Seconds()*1000)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig6Result is the distribution validation of Fig. 6.
type Fig6Result struct {
	Variance float64
	Samples  int
	// KSD / KSPValue test the engine output against the analytic CDF.
	KSD, KSPValue float64
	// TwoSampleP tests engine output against the independent oracle
	// sampler (the gamrnd stand-in).
	TwoSampleP float64
	// AD2 is the Anderson-Darling statistic against the analytic CDF —
	// tail-weighted, so a broken correction term or mis-gated twister
	// shows here first; ADReject is the 1 % decision.
	AD2      float64
	ADReject bool
	// Histogram density at bin centers, with the analytic PDF, for
	// plotting.
	BinCenters, Density, PDF []float64
}

// Fig6 runs the validation for one variance and sample count using
// Config1 (the remaining configurations produce the same distribution;
// see the core engine tests).
func Fig6(variance float64, samples int, seed uint64) (*Fig6Result, error) {
	if samples < 1000 {
		return nil, fmt.Errorf("decwi: need ≥ 1000 samples for Fig. 6, got %d", samples)
	}
	gen, err := Generate(Config1, GenerateOptions{
		Scenarios: int64(samples), Sectors: 1, Variance: variance, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	sample := gen.Sector(0)
	d, p, err := ValidateGamma(sample, variance)
	if err != nil {
		return nil, err
	}
	ref, err := ReferenceSample(samples, variance, seed+1)
	if err != nil {
		return nil, err
	}
	two := stats.KSTestTwoSample(stats.Float32To64(sample), stats.Float32To64(ref))

	gd, err := stats.NewGammaDist(1/variance, variance)
	if err != nil {
		return nil, err
	}
	ad, err := stats.ADTestOneSample(stats.Float32To64(sample), gd.CDF)
	if err != nil {
		return nil, err
	}
	adReject, err := ad.RejectAt(0.01)
	if err != nil {
		return nil, err
	}
	hi := 6 * variance
	if hi < 6 {
		hi = 6
	}
	h, err := stats.NewHistogram(0, hi, 60)
	if err != nil {
		return nil, err
	}
	h.AddAll(sample)
	res := &Fig6Result{
		Variance: variance, Samples: samples, KSD: d, KSPValue: p,
		TwoSampleP: two.PValue, AD2: ad.A2, ADReject: adReject,
	}
	for i := range h.Counts {
		c := h.BinCenter(i)
		res.BinCenters = append(res.BinCenters, c)
		res.Density = append(res.Density, h.Density(i))
		res.PDF = append(res.PDF, gd.PDF(c))
	}
	return res, nil
}

// Fig7Row is one point of the transfers-only sweep.
type Fig7Row struct {
	BurstRNs  int
	Engines   int
	Bandwidth float64
	Runtime   time.Duration
}

// Fig7 regenerates the transfers-only runtime sweep over burst lengths
// and work-item counts.
func Fig7(burstRNs, engines []int) ([]Fig7Row, error) {
	if len(burstRNs) == 0 {
		burstRNs = []int{16, 32, 64, 128, 256, 512, 1024, 2048}
	}
	if len(engines) == 0 {
		engines = []int{1, 2, 4, 6, 8}
	}
	pts, err := fpga.DefaultMemController().Fig7Sweep(paperWorkload().Bytes(), burstRNs, engines)
	if err != nil {
		return nil, err
	}
	out := make([]Fig7Row, len(pts))
	for i, p := range pts {
		out[i] = Fig7Row{BurstRNs: p.BurstRNs, Engines: p.Engines, Bandwidth: p.Bandwidth, Runtime: p.Runtime}
	}
	return out, nil
}

// PowerSample is one meter reading of the Fig. 8 trace.
type PowerSample struct {
	T time.Duration
	W float64
}

// Fig8Result is a synthesized measurement run.
type Fig8Result struct {
	Platform     string
	Config       string
	Samples      []PowerSample
	KernelStart  time.Duration
	WindowStart  time.Duration
	WindowEnd    time.Duration
	IdleW        float64
	EnergyPerInv float64 // joules
}

// Fig8 synthesizes the plug-power trace for one platform under one
// configuration (the paper plots Config1) and applies the integration
// procedure.
func Fig8(c ConfigID, platform string) (*Fig8Result, error) {
	k, err := c.kernel()
	if err != nil {
		return nil, err
	}
	cells, err := power.Fig9(paperWorkload())
	if err != nil {
		return nil, err
	}
	var rt time.Duration
	found := false
	for _, cell := range cells {
		if cell.Config == k.Name && cell.Platform == platform {
			rt = cell.Runtime
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("decwi: no runtime for %s on %s", k.Name, platform)
	}
	pw, err := power.DynamicPowerW(platform, k)
	if err != nil {
		return nil, err
	}
	tr, err := power.SynthesizeTrace(pw, rt, 150*time.Second)
	if err != nil {
		return nil, err
	}
	e, err := tr.DynamicEnergyPerInvocation()
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{
		Platform: platform, Config: k.Name,
		KernelStart: tr.KernelStart, WindowStart: tr.WindowStart, WindowEnd: tr.WindowEnd,
		IdleW: power.IdleSystemW, EnergyPerInv: e,
	}
	for _, s := range tr.Samples {
		res.Samples = append(res.Samples, PowerSample{T: s.T, W: s.W})
	}
	return res, nil
}

// EnergyRow is one bar of Fig. 9.
type EnergyRow struct {
	Config   string
	Platform string
	EnergyJ  float64
	// RatioVsFPGA is E(platform)/E(FPGA) for the configuration.
	RatioVsFPGA float64
}

// Fig9 regenerates the derived system-level dynamic energy per kernel
// invocation for all configurations and platforms.
func Fig9() ([]EnergyRow, error) {
	cells, err := power.Fig9(paperWorkload())
	if err != nil {
		return nil, err
	}
	var rows []EnergyRow
	for _, cell := range cells {
		r := EnergyRow{Config: cell.Config, Platform: cell.Platform, EnergyJ: cell.EnergyJ}
		if cell.Platform != "FPGA" {
			ratio, err := power.EfficiencyRatio(cells, cell.Config, cell.Platform)
			if err != nil {
				return nil, err
			}
			r.RatioVsFPGA = ratio
		} else {
			r.RatioVsFPGA = 1
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// DivergencePoint is one sample of the lockstep-vs-decoupled comparison
// (the quantitative content of Fig. 2).
type DivergencePoint struct {
	// Width is the hardware partition width (1 = decoupled / FPGA).
	Width int
	// Inflation is the fraction of issue slots the lockstep partition
	// spends relative to decoupled execution (≥ 1; 1 = no loss).
	Inflation float64
	// DivergentStepFrac is the fraction of steps on which the
	// accept/store branch diverged inside the partition.
	DivergentStepFrac float64
}

// DivergenceSweep measures lockstep divergence inflation across hardware
// partition widths for configuration c by running the real generators in
// lockstep (internal/simt): width 1 is the FPGA's decoupled work-item;
// 8/16/32 are CPU SIMD, Xeon Phi and GPU warp granularity.
func DivergenceSweep(c ConfigID, quota int64, widths []int, seed uint64) ([]DivergencePoint, error) {
	k, err := c.kernel()
	if err != nil {
		return nil, err
	}
	if quota < 1 {
		return nil, fmt.Errorf("decwi: quota %d must be ≥ 1", quota)
	}
	if len(widths) == 0 {
		widths = []int{1, 8, 16, 32}
	}
	pts, err := simt.InflationSweep(k.Transform, k.MTParams, 1.39, quota, widths, seed)
	if err != nil {
		return nil, err
	}
	out := make([]DivergencePoint, len(pts))
	for i, p := range pts {
		out[i] = DivergencePoint{Width: p.Width, Inflation: p.Inflation, DivergentStepFrac: p.DivFrac}
	}
	return out, nil
}

// CoSimReport is the outcome of the cycle-accurate dataflow
// co-simulation — the ground truth behind the analytic FPGA timing model
// and the quantitative form of Fig. 3.
type CoSimReport struct {
	// Cycles is the total cycle count until all data reached memory.
	Cycles int64
	// OverlapFraction is the share of memory-channel-busy cycles during
	// which at least one pipeline also produced (Fig. 3's interleaving).
	OverlapFraction float64
	// StallFraction is the share of pipeline cycles lost to stream
	// backpressure.
	StallFraction float64
	// EffectiveBandwidthGBs is the end-to-end achieved bandwidth.
	EffectiveBandwidthGBs float64
	// TransferBound reports whether the memory channel throttled the
	// pipelines: a substantial share of pipeline cycles were lost to
	// stream backpressure (in the compute-bound regime the FIFOs absorb
	// the channel's arbitration jitter and stalls stay marginal).
	TransferBound bool
}

// CoSimulate runs the cycle-accurate co-simulation of configuration c
// with the given per-work-item output quota (single sector).
func CoSimulate(c ConfigID, quota int64, seed uint64) (*CoSimReport, error) {
	k, err := c.kernel()
	if err != nil {
		return nil, err
	}
	res, err := fpga.RunCoSim(fpga.CoSimConfig{
		WorkItems: k.FPGAWorkItems, Quota: quota,
		Transform: k.Transform, MTParams: k.MTParams, Variance: 1.39,
		Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	stall := float64(res.StalledCycles) / float64(res.Cycles*int64(k.FPGAWorkItems))
	return &CoSimReport{
		Cycles:                res.Cycles,
		OverlapFraction:       res.OverlapFraction(),
		StallFraction:         stall,
		EffectiveBandwidthGBs: res.EffectiveBandwidthGBs,
		TransferBound:         stall > 0.10,
	}, nil
}

// RejectionRateRow reports the Section IV-E rejection-rate measurements.
type RejectionRateRow struct {
	Transform string
	Variance  float64
	Rate      float64
	// PaperRate is the published value (0 when the paper gives none).
	PaperRate float64
}

// RejectionRates measures the combined rejection rates over the paper's
// variance sweep (v = 0.1, 1.39, 100) for both transform families.
func RejectionRates(outputs int, seed uint64) ([]RejectionRateRow, error) {
	if outputs < 1000 {
		return nil, fmt.Errorf("decwi: need ≥ 1000 outputs, got %d", outputs)
	}
	paper := map[string]map[float64]float64{
		"Marsaglia-Bray":  {0.1: 0.278, 1.39: 0.303, 100: 0.337},
		"ICDF FPGA-style": {0.1: 0.053, 1.39: 0.074, 100: 0.102},
	}
	var rows []RejectionRateRow
	for _, c := range []ConfigID{Config1, Config3} {
		tf, err := transformOf(c)
		if err != nil {
			return nil, err
		}
		for _, v := range []float64{0.1, 1.39, 100} {
			rate, err := MeasureRejection(c, v, outputs, seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, RejectionRateRow{
				Transform: tf.String(), Variance: v, Rate: rate,
				PaperRate: paper[tf.String()][v],
			})
		}
	}
	return rows, nil
}
