package decwi_test

import (
	"math"
	"testing"
	"time"

	decwi "github.com/decwi/decwi"
)

func TestConfigDescribe(t *testing.T) {
	want := []struct {
		id        decwi.ConfigID
		transform string
		exponent  int
		states    int
		wi        int
	}{
		{decwi.Config1, "Marsaglia-Bray", 19937, 624, 6},
		{decwi.Config2, "Marsaglia-Bray", 521, 17, 6},
		{decwi.Config3, "ICDF FPGA-style", 19937, 624, 8},
		{decwi.Config4, "ICDF FPGA-style", 521, 17, 8},
	}
	for _, tc := range want {
		info, err := tc.id.Describe()
		if err != nil {
			t.Fatal(err)
		}
		if info.Transform != tc.transform || info.MTExponent != tc.exponent ||
			info.MTStates != tc.states || info.FPGAWorkItems != tc.wi {
			t.Errorf("%v: %+v", tc.id, info)
		}
	}
	if _, err := decwi.ConfigID(9).Describe(); err == nil {
		t.Error("invalid config should fail")
	}
	if decwi.Config1.String() != "Config1" {
		t.Error("String")
	}
	if decwi.ConfigID(0).String() == "Config0" {
		t.Error("invalid String should be marked")
	}
}

// TestExtensionZiggurat: the conclusion's extensibility claim — the
// ziggurat rejection method drops into the decoupled engine unchanged and
// produces the same gamma distribution at its own (lower) rejection rate.
func TestExtensionZiggurat(t *testing.T) {
	info, err := decwi.ExtensionZiggurat.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if info.Transform != "Ziggurat" || !info.Rejecting {
		t.Fatalf("info %+v", info)
	}
	if decwi.ExtensionZiggurat.String() != "ConfigZ(ext)" {
		t.Fatal("name")
	}
	res, err := decwi.Generate(decwi.ExtensionZiggurat, decwi.GenerateOptions{
		Scenarios: 30000, Sectors: 1, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkItems != 9 {
		t.Fatalf("extension work-items %d, want 9", res.WorkItems)
	}
	// Combined rejection: ziggurat (~2.5 %) + Marsaglia-Tsang (~2.3 %).
	if res.RejectionRate < 0.02 || res.RejectionRate > 0.09 {
		t.Fatalf("ziggurat combined rejection %f", res.RejectionRate)
	}
	_, p, err := decwi.ValidateGamma(res.Sector(0), 1.39)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Fatalf("ziggurat-config output rejected by KS: p=%g", p)
	}
	// The divergence machinery accepts the extension config too.
	pts, err := decwi.DivergenceSweep(decwi.ExtensionZiggurat, 500, []int{1, 32}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Inflation != 1 || pts[1].Inflation < 1 {
		t.Fatalf("divergence sweep %+v", pts)
	}
}

func TestGenerateQuickstart(t *testing.T) {
	res, err := decwi.Generate(decwi.Config2, decwi.GenerateOptions{
		Scenarios: 20000, Sectors: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 40000 {
		t.Fatalf("values %d", len(res.Values))
	}
	if res.WorkItems != 6 {
		t.Fatalf("default work-items %d, want the P&R outcome 6", res.WorkItems)
	}
	if math.Abs(res.RejectionRate-0.303) > 0.03 {
		t.Fatalf("rejection rate %f", res.RejectionRate)
	}
	if res.FPGATime <= 0 {
		t.Fatal("modelled FPGA time missing")
	}
	// Distribution check through the public API.
	d, p, err := decwi.ValidateGamma(res.Sector(0), 1.39)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Fatalf("KS rejected: D=%g p=%g", d, p)
	}
	// Errors surface.
	if _, err := decwi.Generate(decwi.ConfigID(0), decwi.GenerateOptions{Scenarios: 1, Sectors: 1}); err == nil {
		t.Fatal("bad config should fail")
	}
	if _, err := decwi.Generate(decwi.Config1, decwi.GenerateOptions{Scenarios: 0, Sectors: 1}); err == nil {
		t.Fatal("bad options should fail")
	}
}

func TestReferenceSampleAndValidate(t *testing.T) {
	ref, err := decwi.ReferenceSample(30000, 1.39, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, p, err := decwi.ValidateGamma(ref, 1.39)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Fatalf("oracle rejected itself: p=%g", p)
	}
	if _, err := decwi.ReferenceSample(0, 1.39, 1); err == nil {
		t.Fatal("n=0 should fail")
	}
	if _, err := decwi.ReferenceSample(10, -1, 1); err == nil {
		t.Fatal("bad variance should fail")
	}
	if _, _, err := decwi.ValidateGamma(nil, 1.39); err == nil {
		t.Fatal("empty sample should fail")
	}
}

func TestTableIIPublic(t *testing.T) {
	rows, err := decwi.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0].WorkItems != 6 || rows[2].WorkItems != 8 {
		t.Fatalf("work items %d/%d", rows[0].WorkItems, rows[2].WorkItems)
	}
	out := decwi.RenderTableII(rows)
	if len(out) == 0 || out[0] != 'T' {
		t.Fatal("render empty")
	}
}

func TestTableIIIPublic(t *testing.T) {
	rows, err := decwi.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0].FPGA >= rows[0].CPU {
		t.Fatal("Config1: FPGA should beat CPU")
	}
	if s := decwi.RenderTableIII(rows); len(s) < 100 {
		t.Fatal("render too short")
	}
}

func TestFig5Public(t *testing.T) {
	a, err := decwi.Fig5a(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3*2*8 {
		t.Fatalf("fig5a points %d", len(a))
	}
	b, err := decwi.Fig5b(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 3*2*5 {
		t.Fatalf("fig5b points %d", len(b))
	}
	if s := decwi.RenderSweep("Fig 5a", "localSize", a); len(s) < 100 {
		t.Fatal("render too short")
	}
}

func TestFig6Public(t *testing.T) {
	res, err := decwi.Fig6(1.39, 50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.KSPValue < 0.001 {
		t.Fatalf("Fig6 KS rejected: %g", res.KSPValue)
	}
	if res.TwoSampleP < 0.001 {
		t.Fatalf("Fig6 two-sample rejected: %g", res.TwoSampleP)
	}
	if res.ADReject {
		t.Fatalf("Fig6 Anderson-Darling rejected the tails: A2=%g", res.AD2)
	}
	if len(res.BinCenters) != 60 || len(res.Density) != 60 || len(res.PDF) != 60 {
		t.Fatal("histogram series missing")
	}
	if _, err := decwi.Fig6(1.39, 10, 3); err == nil {
		t.Fatal("tiny sample should fail")
	}
}

func TestFig7Public(t *testing.T) {
	rows, err := decwi.Fig7(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8*5 {
		t.Fatalf("rows %d", len(rows))
	}
	// Saturated bandwidth near the paper's ≈3.9 GB/s.
	last := rows[len(rows)-1]
	if last.Bandwidth < 3.5 || last.Bandwidth > 4.2 {
		t.Fatalf("saturated bandwidth %g", last.Bandwidth)
	}
}

func TestFig8Public(t *testing.T) {
	res, err := decwi.Fig8(decwi.Config1, "FPGA")
	if err != nil {
		t.Fatal(err)
	}
	if res.WindowEnd-res.WindowStart != 100*time.Second {
		t.Fatal("integration window wrong")
	}
	if len(res.Samples) < 150 {
		t.Fatalf("trace too short: %d samples", len(res.Samples))
	}
	// FPGA energy/invocation ≈ 45 W × 0.7 s ≈ 31.5 J.
	if res.EnergyPerInv < 25 || res.EnergyPerInv > 40 {
		t.Fatalf("FPGA energy per invocation %g J", res.EnergyPerInv)
	}
	if _, err := decwi.Fig8(decwi.Config1, "TPU"); err == nil {
		t.Fatal("unknown platform should fail")
	}
}

func TestFig9Public(t *testing.T) {
	rows, err := decwi.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Platform == "FPGA" && r.RatioVsFPGA != 1 {
			t.Fatalf("FPGA self-ratio %g", r.RatioVsFPGA)
		}
		if r.Platform != "FPGA" && r.RatioVsFPGA < 1.8 {
			t.Fatalf("%s/%s ratio %g below the paper's minimum band", r.Config, r.Platform, r.RatioVsFPGA)
		}
	}
}

func TestRejectionRatesPublic(t *testing.T) {
	rows, err := decwi.RejectionRates(50000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Transform == "Marsaglia-Bray" && math.Abs(r.Rate-r.PaperRate) > 0.02 {
			t.Errorf("M-Bray v=%g: rate %f vs paper %f", r.Variance, r.Rate, r.PaperRate)
		}
	}
	if _, err := decwi.RejectionRates(10, 9); err == nil {
		t.Fatal("tiny run should fail")
	}
}

func TestMeasureRejectionPublic(t *testing.T) {
	r, err := decwi.MeasureRejection(decwi.Config1, 1.39, 50000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.303) > 0.02 {
		t.Fatalf("rate %f", r)
	}
	if _, err := decwi.MeasureRejection(decwi.Config1, 0, 100, 1); err == nil {
		t.Fatal("bad variance should fail")
	}
	if _, err := decwi.MeasureRejection(decwi.Config1, 1, 0, 1); err == nil {
		t.Fatal("bad outputs should fail")
	}
}

func TestSessionEndToEnd(t *testing.T) {
	s, err := decwi.NewSession("FPGA")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	opts := decwi.GenerateOptions{Scenarios: 8192, Sectors: 2, Seed: 5}
	run, err := s.EnqueueGamma(decwi.Config4, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Host) != 8192*2 {
		t.Fatalf("host data %d", len(run.Host))
	}
	if run.ReadRequests != 1 {
		t.Fatalf("device-level combining should issue 1 read, got %d", run.ReadRequests)
	}
	if run.DeviceTime <= 0 {
		t.Fatal("profiled device time missing")
	}
	for i, v := range run.Host {
		if !(v > 0) {
			t.Fatalf("host slot %d = %g", i, v)
		}
	}

	// Host-level combining: same data, N read requests, slower read.
	run2, err := s.EnqueueGamma(decwi.Config4, opts, true)
	if err != nil {
		t.Fatal(err)
	}
	if run2.ReadRequests != 8 {
		t.Fatalf("host-level combining should issue 8 reads, got %d", run2.ReadRequests)
	}
	for i := range run.Host {
		if run.Host[i] != run2.Host[i] {
			t.Fatalf("combining strategies disagree at %d", i)
		}
	}
	if run2.ReadTime <= run.ReadTime {
		t.Fatalf("host-level read %v should be slower than device-level %v", run2.ReadTime, run.ReadTime)
	}

	if _, err := decwi.NewSession("TPU"); err == nil {
		t.Fatal("unknown device should fail")
	}
}

// TestCoSimulatePublic: the facade co-simulation distinguishes the two
// Table III regimes — Config1 compute-bound, Config3 transfer-bound.
func TestCoSimulatePublic(t *testing.T) {
	c1, err := decwi.CoSimulate(decwi.Config2, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c1.TransferBound {
		t.Error("Config2 should be compute-bound")
	}
	if c1.OverlapFraction < 0.85 {
		t.Errorf("Config2 overlap %f", c1.OverlapFraction)
	}
	c3, err := decwi.CoSimulate(decwi.Config4, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !c3.TransferBound {
		t.Error("Config4 should be transfer-bound")
	}
	if c3.EffectiveBandwidthGBs < 3.5 || c3.EffectiveBandwidthGBs > 4.2 {
		t.Errorf("Config4 bandwidth %f", c3.EffectiveBandwidthGBs)
	}
	if c3.StallFraction <= c1.StallFraction {
		t.Error("transfer-bound config should stall more")
	}
	if _, err := decwi.CoSimulate(decwi.ConfigID(0), 100, 1); err == nil {
		t.Error("bad config should fail")
	}
}

func TestPortfolioRiskPublic(t *testing.T) {
	p, err := decwi.NewUniformPortfolio(3, 1.39, 30, 0.02, 100)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := decwi.PortfolioRisk(p, decwi.Config2, 20000, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.ExpectedLoss-rep.AnalyticEL)/rep.AnalyticEL > 0.08 {
		t.Fatalf("EL %g vs analytic %g", rep.ExpectedLoss, rep.AnalyticEL)
	}
	if math.Abs(rep.LossStd-rep.AnalyticStd)/rep.AnalyticStd > 0.15 {
		t.Fatalf("std %g vs analytic %g", rep.LossStd, rep.AnalyticStd)
	}
	if rep.VaR999 < rep.ExpectedLoss {
		t.Fatal("VaR below expected loss is impossible here")
	}
	if rep.ES999 < rep.VaR999 {
		t.Fatal("ES below VaR")
	}
	if rep.PanjerVaR999 <= 0 {
		t.Fatal("Panjer cross-check missing")
	}
	if len(rep.RiskContributions) != 30 {
		t.Fatalf("risk contributions %d, want one per obligor", len(rep.RiskContributions))
	}
	var rcSum float64
	for _, c := range rep.RiskContributions {
		rcSum += c
	}
	if math.Abs(rcSum-rep.AnalyticStd)/rep.AnalyticStd > 1e-12 {
		t.Fatalf("risk contributions sum %g, want σ=%g", rcSum, rep.AnalyticStd)
	}
	// MC and Panjer agree within banding + sampling slack.
	if math.Abs(rep.VaR999-rep.PanjerVaR999) > 3*100 {
		t.Fatalf("VaR999 MC %g vs Panjer %g", rep.VaR999, rep.PanjerVaR999)
	}
	if _, err := decwi.NewUniformPortfolio(0, 1, 1, 0.1, 1); err == nil {
		t.Fatal("zero sectors should fail")
	}
}
