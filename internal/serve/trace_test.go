package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	ftrace "github.com/decwi/decwi/internal/telemetry/flight"
)

// traceCfg returns a Config with an attached flight recorder sized for
// tests.
func traceCfg(cfg Config) Config {
	cfg.Flight = ftrace.New(64, 16, 250*time.Millisecond)
	return cfg
}

// tparent builds a valid W3C traceparent carrying the given trace id.
const testTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

func tparent(traceID string) string {
	return "00-" + traceID + "-00f067aa0ba902b7-01"
}

// jobTrace fetches (and schema-checks) the job's trace from the
// scheduler's flight recorder.
func jobTrace(t *testing.T, s *Scheduler, id string) ftrace.TraceJSON {
	t.Helper()
	tj, ok := s.FlightRecorder().Get(id)
	if !ok {
		t.Fatalf("trace for %s not retained", id)
	}
	body, err := json.Marshal(tj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ftrace.CheckTraceJSON(body); err != nil {
		t.Fatalf("trace %s fails validation: %v", id, err)
	}
	return tj
}

// spanNames collects the trace's span names into a set.
func spanNames(tj ftrace.TraceJSON) map[string]int {
	names := map[string]int{}
	for _, sp := range tj.Spans {
		names[sp.Name]++
	}
	return names
}

// TestTraceQueuedLaneSpanTree: a traceparent-carrying submission on the
// plain queued lane produces a complete, validation-clean span tree —
// admission spans, queue wait, the engine run with per-chunk spans from
// the parallel scheduler, and the digest — under the client's trace id.
func TestTraceQueuedLaneSpanTree(t *testing.T) {
	s := New(traceCfg(Config{Executors: 1}))
	defer s.Drain(context.Background())

	spec := genSpec()
	spec.Seed = 71
	j, err := s.SubmitTraced(spec, tparent(testTraceID))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.TraceID != testTraceID {
		t.Fatalf("status trace id %q, want adopted %q", st.TraceID, testTraceID)
	}
	if st.Lane != "queued" {
		t.Fatalf("lane %q, want queued", st.Lane)
	}

	tj := jobTrace(t, s, j.ID)
	if tj.TraceID != testTraceID || tj.State != "done" || tj.Lane != "queued" {
		t.Fatalf("trace header %s/%s/%s, want %s/done/queued", tj.TraceID, tj.State, tj.Lane, testTraceID)
	}
	names := spanNames(tj)
	for _, want := range []string{"job", "validate", "cache-lookup", "quota", "enqueue", "queue-wait", "engine-run", "digest"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from queued-lane trace (have %v)", want, names)
		}
	}
	if names["chunk[0]"] == 0 {
		t.Errorf("no chunk[0] span — engine run not linked to per-chunk execution (have %v)", names)
	}
	// The engine-run span must parent the chunk spans.
	var runID ftrace.SpanID
	for _, sp := range tj.Spans {
		if sp.Name == "engine-run" {
			runID = sp.ID
		}
	}
	for _, sp := range tj.Spans {
		if sp.Name == "chunk[0]" && sp.Parent != runID {
			t.Errorf("chunk[0] parent %d, want engine-run %d", sp.Parent, runID)
		}
	}
	if tj.DurationUS < 0 {
		t.Fatalf("finished trace has live duration %d", tj.DurationUS)
	}
}

// TestTraceCacheHitLane: the second identical submission is answered
// from the result cache; its trace records the hit and never reaches
// the engine.
func TestTraceCacheHitLane(t *testing.T) {
	s := New(traceCfg(Config{Executors: 1,
		runHook: func(context.Context, *JobSpec) ([]byte, *execMeta, error) {
			return []byte("bytes"), &execMeta{}, nil
		}}))
	defer s.Drain(context.Background())

	j1, err := s.SubmitTraced(seeded(42), "")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	j2, err := s.SubmitTraced(seeded(42), "")
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j2)
	if !st.Cached || st.Lane != "cache-hit" {
		t.Fatalf("second submission cached=%v lane=%q, want true/cache-hit", st.Cached, st.Lane)
	}
	tj := jobTrace(t, s, j2.ID)
	names := spanNames(tj)
	if names["cache-lookup"] == 0 {
		t.Fatalf("cache-hit trace lacks cache-lookup span: %v", names)
	}
	if names["engine-run"] != 0 || names["queue-wait"] != 0 {
		t.Fatalf("cache-hit trace ran the engine: %v", names)
	}
	if tj.Lane != "cache-hit" || tj.State != "done" {
		t.Fatalf("trace lane/state %s/%s, want cache-hit/done", tj.Lane, tj.State)
	}
}

// TestTraceCoalescedLane: a submission that coalesces onto a running
// identical flight records the dedup decision, its wait on the shared
// run, and a root-level copy of the leader's engine-run span.
func TestTraceCoalescedLane(t *testing.T) {
	hook, release := parkedHook()
	s := New(traceCfg(Config{Executors: 1, CacheBytes: -1, runHook: hook}))
	defer s.Drain(context.Background())

	leader, err := s.SubmitTraced(seeded(42), "")
	if err != nil {
		t.Fatal(err)
	}
	follower, err := s.SubmitTraced(seeded(42), "")
	if err != nil {
		t.Fatal(err)
	}
	release()
	waitTerminal(t, leader)
	fst := waitTerminal(t, follower)
	if !fst.Coalesced || fst.Lane != "coalesced" {
		t.Fatalf("follower coalesced=%v lane=%q, want true/coalesced", fst.Coalesced, fst.Lane)
	}

	ftj := jobTrace(t, s, follower.ID)
	names := spanNames(ftj)
	for _, want := range []string{"dedup", "shared-run-wait", "engine-run"} {
		if names[want] == 0 {
			t.Errorf("coalesced trace lacks %q span: %v", want, names)
		}
	}
	for _, sp := range ftj.Spans {
		if sp.Name == "engine-run" {
			if sp.Parent != 0 {
				t.Errorf("coalesced engine-run parent %d, want root-level 0", sp.Parent)
			}
			if want := "shared with " + leader.ID; sp.Detail != want {
				t.Errorf("coalesced engine-run detail %q, want %q", sp.Detail, want)
			}
		}
	}
	// The leader's own trace owns the real engine-run under its job span.
	ltj := jobTrace(t, s, leader.ID)
	lnames := spanNames(ltj)
	if lnames["engine-run"] == 0 {
		t.Fatalf("leader trace lacks engine-run: %v", lnames)
	}
}

// TestTraceFastPathLane: a small job on an idle scheduler runs inline;
// its trace names the lane in the enqueue span.
func TestTraceFastPathLane(t *testing.T) {
	s := New(traceCfg(Config{Executors: 2, FastPathValues: 2000,
		runHook: func(context.Context, *JobSpec) ([]byte, *execMeta, error) {
			return []byte("fast"), &execMeta{}, nil
		}}))
	defer s.Drain(context.Background())

	j, err := s.SubmitTraced(seeded(1), "")
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.Lane != "fast-path" {
		t.Fatalf("lane %q, want fast-path", st.Lane)
	}
	tj := jobTrace(t, s, j.ID)
	found := false
	for _, sp := range tj.Spans {
		if sp.Name == "enqueue" && sp.Detail == "fast-path inline" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fast-path trace lacks the inline enqueue marker: %+v", tj.Spans)
	}
}

// TestTraceRejectedSubmission: a validation reject still leaves a
// finished, pinned trace behind (failed jobs are pinned).
func TestTraceRejectedSubmission(t *testing.T) {
	s := New(traceCfg(Config{Executors: 1}))
	defer s.Drain(context.Background())

	bad := genSpec()
	bad.Scenarios = -5
	if _, err := s.SubmitTraced(bad, tparent(testTraceID)); err == nil {
		t.Fatal("invalid spec admitted")
	}
	tj, ok := s.FlightRecorder().Get(testTraceID)
	if !ok {
		t.Fatal("rejected submission left no trace")
	}
	if tj.State != "rejected" {
		t.Fatalf("rejected trace state %q", tj.State)
	}
	names := spanNames(tj)
	if names["validate"] == 0 {
		t.Fatalf("rejected trace lacks validate span: %v", names)
	}
}

// TestTracephaseTimestamps: the status carries monotone per-phase wall
// timestamps once the job is terminal.
func TestTracePhaseTimestamps(t *testing.T) {
	s := New(traceCfg(Config{Executors: 1,
		runHook: func(context.Context, *JobSpec) ([]byte, *execMeta, error) {
			return []byte("x"), &execMeta{}, nil
		}}))
	defer s.Drain(context.Background())

	j, err := s.SubmitTraced(seeded(7), "")
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.AdmittedUnixUS <= 0 {
		t.Fatalf("admitted timestamp %d", st.AdmittedUnixUS)
	}
	if st.StartedUnixUS < st.AdmittedUnixUS {
		t.Fatalf("started %d before admitted %d", st.StartedUnixUS, st.AdmittedUnixUS)
	}
	if st.FinishedUnixUS < st.StartedUnixUS {
		t.Fatalf("finished %d before started %d", st.FinishedUnixUS, st.StartedUnixUS)
	}
}

// TestTracingOffNoop: without a flight recorder every trace operation
// is a nil-receiver no-op — jobs run normally and expose no trace id.
func TestTracingOffNoop(t *testing.T) {
	s := New(Config{Executors: 1,
		runHook: func(context.Context, *JobSpec) ([]byte, *execMeta, error) {
			return []byte("x"), &execMeta{}, nil
		}})
	defer s.Drain(context.Background())

	j, err := s.SubmitTraced(seeded(7), tparent(testTraceID))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("untraced job ended %s", st.State)
	}
	if st.TraceID != "" || st.Lane == "" {
		// Lane is still reported (it is admission metadata, not tracing).
		t.Fatalf("untraced status trace=%q lane=%q", st.TraceID, st.Lane)
	}
	if s.FlightRecorder() != nil {
		t.Fatal("recorder present with tracing off")
	}
}

// TestDebugJobsHTTP: the /debug endpoints serve a valid listing and
// complete span trees addressable by job id and by trace id; unknown
// ids 404; a recorder-less server 404s the whole surface.
func TestDebugJobsHTTP(t *testing.T) {
	ts, sched := testServer(t, traceCfg(Config{Executors: 2}))
	var ids []string
	for i := 0; i < 3; i++ {
		spec := genSpec()
		spec.Seed = uint64(100 + i)
		st, _ := runJobOverHTTP(t, ts, "/v1/generate", spec)
		ids = append(ids, st.ID)
		if st.TraceID == "" {
			t.Fatalf("job %s has no trace id", st.ID)
		}
	}

	body := getBody(t, ts.URL+"/debug/jobs", http.StatusOK)
	n, err := ftrace.CheckJobsJSON(body)
	if err != nil {
		t.Fatalf("/debug/jobs invalid: %v", err)
	}
	if n < 3 {
		t.Fatalf("listing has %d traces, want ≥ 3", n)
	}

	// Addressable by job id and by trace id, identical content.
	byJob := getBody(t, ts.URL+"/debug/jobs/"+ids[0], http.StatusOK)
	if _, err := ftrace.CheckTraceJSON(byJob); err != nil {
		t.Fatalf("trace by job id invalid: %v", err)
	}
	var tj ftrace.TraceJSON
	if err := json.Unmarshal(byJob, &tj); err != nil {
		t.Fatal(err)
	}
	byTrace := getBody(t, ts.URL+"/debug/jobs/"+tj.TraceID, http.StatusOK)
	if _, err := ftrace.CheckTraceJSON(byTrace); err != nil {
		t.Fatalf("trace by trace id invalid: %v", err)
	}
	// The status endpoint's trace id keys the same trace.
	if sched.FlightRecorder() == nil {
		t.Fatal("scheduler lost its recorder")
	}
	getBody(t, ts.URL+"/debug/jobs/no-such-id", http.StatusNotFound)

	// Tracing off: the endpoints answer 404, signalling the disabled
	// surface rather than an empty listing.
	tsOff, _ := testServer(t, Config{Executors: 1,
		runHook: func(context.Context, *JobSpec) ([]byte, *execMeta, error) {
			return []byte("x"), &execMeta{}, nil
		}})
	getBody(t, tsOff.URL+"/debug/jobs", http.StatusNotFound)
	getBody(t, tsOff.URL+"/debug/jobs/whatever", http.StatusNotFound)
}

// getBody asserts the status code and returns the response body.
func getBody(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d: %s", url, resp.StatusCode, wantStatus, b)
	}
	return b
}

// TestTraceConcurrentSubmitAndDebugReads hammers /debug/jobs and
// per-trace fetches while jobs churn through submission — the recorder
// and the HTTP surface must stay consistent under the race detector.
func TestTraceConcurrentSubmitAndDebugReads(t *testing.T) {
	ts, _ := testServer(t, traceCfg(Config{Executors: 2,
		runHook: func(context.Context, *JobSpec) ([]byte, *execMeta, error) {
			return []byte("payload"), &execMeta{}, nil
		}}))

	const jobs = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/debug/jobs")
				if err != nil {
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/debug/jobs status %d", resp.StatusCode)
					return
				}
				if _, err := ftrace.CheckJobsJSON(body); err != nil {
					t.Errorf("listing invalid under churn: %v", err)
					return
				}
				var listing ftrace.JobsJSON
				if json.Unmarshal(body, &listing) == nil && len(listing.Jobs) > 0 {
					// Fetch the newest trace too: live traces must also
					// serve a consistent snapshot.
					r2, err := http.Get(ts.URL + "/debug/jobs/" + listing.Jobs[0].TraceID)
					if err == nil {
						b2, _ := io.ReadAll(r2.Body)
						r2.Body.Close()
						if r2.StatusCode == http.StatusOK {
							if _, err := ftrace.CheckTraceJSON(b2); err != nil {
								t.Errorf("trace invalid under churn: %v", err)
								return
							}
						}
					}
				}
			}
		}()
	}
	var sub sync.WaitGroup
	for w := 0; w < 4; w++ {
		sub.Add(1)
		go func(w int) {
			defer sub.Done()
			for i := 0; i < jobs/4; i++ {
				spec := genSpec()
				spec.Seed = uint64(1000 + w*100 + i)
				st, _ := runJobOverHTTP(t, ts, "/v1/generate", spec)
				if st.State != StateDone {
					t.Errorf("job %s ended %s", st.ID, st.State)
				}
			}
		}(w)
	}
	sub.Wait()
	close(stop)
	wg.Wait()
}

// TestSLODegradationAndRecovery: with an injected slow executor and a
// microscopic latency objective every job burns budget, both windows
// light up, and /healthz-facing hooks report degraded; a generous
// objective stays healthy.
func TestSLODegradationAndRecovery(t *testing.T) {
	quick := func(context.Context, *JobSpec) ([]byte, *execMeta, error) {
		return []byte("x"), &execMeta{}, nil
	}

	// CacheBytes -1: a cache hit completes in ~0ns and would count good
	// (seed 0 normalizes to 1, aliasing the first two tuples).
	slow := New(Config{Executors: 1, SLOLatency: 1, CacheBytes: -1, // 1ns: everything is too slow
		ExecDelay: time.Millisecond, runHook: quick})
	defer slow.Drain(context.Background())
	for i := 0; i < 4; i++ {
		j, err := slow.Submit(seeded(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
	}
	st := slow.SLOStatus()
	if !st.Degraded {
		t.Fatalf("SLO not degraded after 4 over-budget jobs: %+v", st)
	}
	if st.Bad != 4 || st.Good != 0 {
		t.Fatalf("SLO counts good=%d bad=%d, want 0/4", st.Good, st.Bad)
	}
	if ok, reason := slow.SLOHealth(); ok || reason == "" {
		t.Fatalf("SLOHealth ok=%v reason=%q, want degraded with reason", ok, reason)
	}

	healthy := New(Config{Executors: 1, SLOLatency: 10 * time.Second, runHook: quick})
	defer healthy.Drain(context.Background())
	for i := 0; i < 4; i++ {
		j, err := healthy.Submit(seeded(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
	}
	if st := healthy.SLOStatus(); st.Degraded || st.Good != 4 {
		t.Fatalf("healthy scheduler degraded: %+v", st)
	}
	if ok, _ := healthy.SLOHealth(); !ok {
		t.Fatal("healthy scheduler reports unhealthy")
	}

	// SLO plane off: zero Status, always healthy.
	off := New(Config{Executors: 1, SLOLatency: -1, runHook: quick})
	defer off.Drain(context.Background())
	if st := off.SLOStatus(); st.Name != "" || st.Degraded {
		t.Fatalf("disabled SLO plane returned %+v", st)
	}
	if ok, _ := off.SLOHealth(); !ok {
		t.Fatal("disabled SLO plane reports unhealthy")
	}
}

// TestTraceStreamOutSpan: downloading a result appends an
// externally-timed root-level stream-out span to the sealed trace.
func TestTraceStreamOutSpan(t *testing.T) {
	ts, sched := testServer(t, traceCfg(Config{Executors: 1,
		runHook: func(context.Context, *JobSpec) ([]byte, *execMeta, error) {
			return []byte("payload-bytes"), &execMeta{}, nil
		}}))
	st, _ := runJobOverHTTP(t, ts, "/v1/generate", seeded(5))
	tj := jobTrace(t, sched, st.ID)
	var got *ftrace.Span
	for i := range tj.Spans {
		if tj.Spans[i].Name == "stream-out" {
			got = &tj.Spans[i]
		}
	}
	if got == nil {
		t.Fatalf("no stream-out span after download: %v", spanNames(tj))
	}
	if got.Parent != 0 {
		t.Fatalf("stream-out parent %d, want root-level", got.Parent)
	}
	if got.Arg != int64(len("payload-bytes")) {
		t.Fatalf("stream-out arg %d, want payload size %d", got.Arg, len("payload-bytes"))
	}
	if got.EndUS < got.StartUS {
		t.Fatalf("stream-out span not closed: [%d,%d]", got.StartUS, got.EndUS)
	}
}

// TestTraceInstrumentNames: the serve.trace.* / serve.slo.* instruments
// follow the repo's metric grammar (the root-package lint walks real
// recorders; this guards the names at their source).
func TestTraceInstrumentNames(t *testing.T) {
	for _, name := range []string{
		"serve.trace.jobs", "serve.trace.spans", "serve.trace.retained",
		"serve.trace.pinned", "serve.slo.good", "serve.slo.bad",
		"serve.slo.latency-us", "serve.slo.burn-short-x1000",
		"serve.slo.burn-long-x1000", "serve.slo.degraded",
	} {
		if name == "" || name[0] == '.' || name[len(name)-1] == '.' {
			t.Errorf("malformed instrument name %q", name)
		}
		for _, r := range name {
			if !(r == '.' || r == '-' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')) {
				t.Errorf("instrument %q contains %q outside the grammar", name, r)
			}
		}
	}
}
