#!/bin/sh
# Tracing non-perturbation gate: the flight recorder and SLO plane must
# not meaningfully slow the serve fast lane. Boots decwi-served twice —
# observability off (-flight 0 -slo-latency 0) and on (defaults) — and
# drives the cache-hot same-seed workload (the BENCH_9 fast lane, where
# per-job overhead is largest relative to work) through decwi-loadgen.
# Gate: tracing-on throughput ≥ TRACE_OVERHEAD_MIN_RATIO × tracing-off
# (default 0.90 — generous against shared-CI noise; the per-job cost of
# a trace is a handful of mutex-guarded span appends).
set -eu

cd "$(dirname "$0")/.."

MIN_RATIO="${TRACE_OVERHEAD_MIN_RATIO:-0.90}"
REQUESTS="${TRACE_OVERHEAD_REQUESTS:-200}"

TMP=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/decwi-served" ./cmd/decwi-served
go build -o "$TMP/decwi-loadgen" ./cmd/decwi-loadgen

# boot <served flags...>: start a server and resolve its ephemeral API
# address from the announce line. Structured logging is off in both
# configurations so the A/B isolates tracing + SLO accounting.
boot() {
    : > "$TMP/served.log"
    "$TMP/decwi-served" -addr 127.0.0.1:0 -log-level off "$@" \
        2> "$TMP/served.log" &
    PID=$!
    API=""
    for _ in $(seq 1 100); do
        API=$(sed -n 's#.*API on \(http://[^ ]*\) .*#\1#p' "$TMP/served.log")
        [ -n "$API" ] && break
        sleep 0.1
    done
    if [ -z "$API" ]; then
        echo "trace overhead: server address never appeared" >&2
        cat "$TMP/served.log" >&2
        exit 1
    fi
}

stop_served() {
    kill -TERM "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    PID=""
}

# measure: best cache-hot throughput of two bursts (the first also
# warms the result cache, connections and JIT-ish CPU state).
measure() {
    best=0
    for _ in 1 2; do
        out=$("$TMP/decwi-loadgen" -url "$API" -same-seed \
            -requests "$REQUESTS" -concurrency 4 -scenarios 20000 -json)
        jps=$(printf '%s' "$out" | sed -n 's/.*"jobs_per_sec":\([0-9.eE+-]*\).*/\1/p')
        [ -n "$jps" ] || { echo "trace overhead: no jobs_per_sec in loadgen output: $out" >&2; exit 1; }
        best=$(awk -v a="$best" -v b="$jps" 'BEGIN{print (b>a)?b:a}')
    done
    printf '%s' "$best"
}

boot -flight 0 -slo-latency 0
OFF=$(measure)
stop_served

boot
ON=$(measure)
stop_served

awk -v on="$ON" -v off="$OFF" -v min="$MIN_RATIO" 'BEGIN{
    ratio = (off > 0) ? on / off : 1
    printf "trace overhead: tracing-on %.1f jobs/s vs tracing-off %.1f jobs/s (ratio %.3f, floor %.2f)\n", on, off, ratio, min
    if (ratio < min) exit 1
}'
echo "trace overhead: OK"
