package serve

import (
	"sync"
	"time"
)

// This file is the per-tenant admission quota: a classic token bucket
// per tenant, refilled continuously at rate tokens/second up to burst.
// Submissions spend one token; an empty bucket rejects (429 at the HTTP
// layer) without queueing — quota pressure must surface immediately,
// not as unbounded latency.

// tokenBucket is one tenant's bucket. Time is passed in (never read
// from the wall clock here) so the scheduler's injectable clock drives
// quota tests deterministically.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// quotaSet tracks every tenant's bucket under one lock; tenant
// cardinality is bounded by the tenant name grammar and the admission
// rate, so a map is enough.
type quotaSet struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; ≤ 0 disables quotas
	burst   float64 // bucket capacity
	buckets map[string]*tokenBucket
}

func newQuotaSet(rate float64, burst int) *quotaSet {
	if burst < 1 {
		burst = 1
	}
	return &quotaSet{rate: rate, burst: float64(burst), buckets: map[string]*tokenBucket{}}
}

// allow spends one token from tenant's bucket at time now, reporting
// whether the submission is within quota. A first-seen tenant starts
// with a full bucket.
func (q *quotaSet) allow(tenant string, now time.Time) bool {
	if q.rate <= 0 {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
