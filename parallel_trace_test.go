package decwi

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/decwi/decwi/internal/telemetry/flight"
)

// TestGenerateParallelChunkSpans: with a flight trace attached, the
// parallel scheduler records one closed chunk[worker] span per executed
// chunk under the given parent — and the traced run's bytes are
// bitwise-identical to the untraced run (attaching observability must
// not perturb the result).
func TestGenerateParallelChunkSpans(t *testing.T) {
	opt := GenerateOptions{Scenarios: 3000, Sectors: 2, Seed: 0xDECA1}
	plain, err := GenerateParallel(Config2, ParallelOptions{
		GenerateOptions: opt, Shards: 4, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	rec := flight.New(4, 4, time.Second)
	tr := rec.Start("", "generate")
	root := tr.Begin("engine-run", 0)
	traced, err := GenerateParallel(Config2, ParallelOptions{
		GenerateOptions: opt, Shards: 4, Workers: 2,
		Trace: tr, TraceSpan: root,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.End(root)
	tr.Finish("done", "")

	bitwiseEqual(t, "traced vs plain", traced.Values, plain.Values)

	tj, ok := rec.Get(tr.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	chunkSpans := 0
	for _, sp := range tj.Spans {
		if len(sp.Name) >= 6 && sp.Name[:6] == "chunk[" {
			chunkSpans++
			if sp.Parent != root {
				t.Errorf("span %s parent %d, want engine-run %d", sp.Name, sp.Parent, root)
			}
			if sp.EndUS < sp.StartUS {
				t.Errorf("span %s not closed: [%d,%d]", sp.Name, sp.StartUS, sp.EndUS)
			}
			if sp.Detail == "" {
				t.Errorf("span %s carries no work-item range detail", sp.Name)
			}
		}
	}
	if chunkSpans != traced.Chunks {
		t.Fatalf("%d chunk spans for %d executed chunks", chunkSpans, traced.Chunks)
	}

	// The whole tree must survive the strict wire-format validation the
	// /debug/jobs consumers run.
	body, err := json.Marshal(tj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flight.CheckTraceJSON(body); err != nil {
		t.Fatalf("chunk-span trace fails validation: %v", err)
	}
}
