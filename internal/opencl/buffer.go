package opencl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// MemFlag mirrors cl_mem_flags access modes.
type MemFlag int

const (
	// ReadWrite allows kernel reads and writes.
	ReadWrite MemFlag = iota
	// ReadOnly is host-written, kernel-read.
	ReadOnly
	// WriteOnly is kernel-written, host-read — the gamma output buffer.
	WriteOnly
)

// Buffer is a device global-memory allocation. Data lives in host-process
// memory (this is a simulator) but the access discipline and the
// transfer-cost accounting follow the OpenCL model.
type Buffer struct {
	name  string
	flags MemFlag
	data  []byte
	// parent is non-nil for sub-buffer views.
	parent *Buffer
	offset int64
}

// NewBuffer allocates a device buffer of size bytes.
func NewBuffer(name string, flags MemFlag, size int64) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("opencl: buffer %q size %d must be positive", name, size)
	}
	return &Buffer{name: name, flags: flags, data: make([]byte, size)}, nil
}

// Name returns the diagnostic name.
func (b *Buffer) Name() string { return b.name }

// Size returns the allocation size in bytes.
func (b *Buffer) Size() int64 { return int64(len(b.data)) }

// Flags returns the access mode.
func (b *Buffer) Flags() MemFlag { return b.flags }

// SubBuffer creates an offset view — how the paper's host-level combining
// addresses region wid·L/N of the destination (Section III-E-1).
func (b *Buffer) SubBuffer(name string, offset, size int64) (*Buffer, error) {
	if offset < 0 || size <= 0 || offset+size > b.Size() {
		return nil, fmt.Errorf("opencl: sub-buffer [%d,%d) outside %q of size %d", offset, offset+size, b.name, b.Size())
	}
	return &Buffer{name: name, flags: b.flags, data: b.data[offset : offset+size], parent: b, offset: offset}, nil
}

// Bytes exposes the raw storage to kernel closures (device-side access).
func (b *Buffer) Bytes() []byte { return b.data }

// Float32Len returns the capacity in float32 elements.
func (b *Buffer) Float32Len() int64 { return b.Size() / 4 }

// Float32At reads element i of the buffer viewed as []float32
// (little-endian, matching the device layout).
func (b *Buffer) Float32At(i int64) (float32, error) {
	if i < 0 || i*4+4 > b.Size() {
		return 0, fmt.Errorf("opencl: float32 index %d outside buffer %q", i, b.name)
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(b.data[i*4:])), nil
}

// SetFloat32 writes element i.
func (b *Buffer) SetFloat32(i int64, v float32) error {
	if i < 0 || i*4+4 > b.Size() {
		return fmt.Errorf("opencl: float32 index %d outside buffer %q", i, b.name)
	}
	binary.LittleEndian.PutUint32(b.data[i*4:], math.Float32bits(v))
	return nil
}

// WriteFloat32s bulk-writes a float32 slice starting at element offset —
// the device-side store path used by kernel closures. The encode runs
// word-at-a-time (single 32-bit store per element) over a re-sliced
// window, so the whole batch moves with one bounds check up front.
func (b *Buffer) WriteFloat32s(offset int64, vs []float32) error {
	if offset < 0 || (offset+int64(len(vs)))*4 > b.Size() {
		return fmt.Errorf("opencl: write of %d floats at %d outside buffer %q", len(vs), offset, b.name)
	}
	out := b.data[offset*4 : (offset+int64(len(vs)))*4]
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return nil
}

// ReadFloat32s bulk-reads into dst from element offset, word-at-a-time
// over a re-sliced window (the mirror of WriteFloat32s).
func (b *Buffer) ReadFloat32s(offset int64, dst []float32) error {
	if offset < 0 || (offset+int64(len(dst)))*4 > b.Size() {
		return fmt.Errorf("opencl: read of %d floats at %d outside buffer %q", len(dst), offset, b.name)
	}
	in := b.data[offset*4 : (offset+int64(len(dst)))*4]
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(in[i*4:]))
	}
	return nil
}

// ErrAccessViolation flags a transfer against the buffer's declared
// access mode.
var ErrAccessViolation = errors.New("opencl: access mode violation")
