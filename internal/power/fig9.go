package power

import (
	"fmt"
	"time"

	"github.com/decwi/decwi/internal/fpga"
	"github.com/decwi/decwi/internal/perf"
)

// Fig9Cell is one bar of Fig. 9: the derived system-level dynamic energy
// per kernel invocation for a platform/configuration pair.
type Fig9Cell struct {
	Platform string
	Config   string
	// Runtime is the Table III runtime used to drive the trace.
	Runtime time.Duration
	// EnergyJ is the per-invocation dynamic energy derived through the
	// full measurement procedure (trace → integrate → subtract idle →
	// divide by invocations).
	EnergyJ float64
}

// fixedStyle returns the ICDF style the paper uses per platform for the
// energy comparison (CUDA-style on CPU/GPU/PHI, Section IV-B note).
func fixedStyle(cfg perf.KernelConfig) perf.ICDFStyle {
	if cfg.Transform == perf.Config1.Transform {
		return perf.ICDFStyleNone
	}
	return perf.ICDFStyleCUDA
}

// Fig9 regenerates the full figure: for every configuration and platform,
// synthesize a ≥150 s measurement run at the Table III runtime and the
// calibrated dynamic power, and push it through the paper's integration
// procedure.
func Fig9(w fpga.Workload) ([]Fig9Cell, error) {
	dev := fpga.DefaultDevice()
	var out []Fig9Cell
	for _, cfg := range perf.AllConfigs {
		runtimes := map[string]time.Duration{}
		for _, p := range perf.FixedPlatforms {
			d, err := p.TunedRuntime(w, cfg, fixedStyle(cfg))
			if err != nil {
				return nil, err
			}
			runtimes[p.Name] = d.Runtime
		}
		ft, err := dev.KernelRuntime(w, cfg.FPGAWorkItems,
			perf.MeasuredIters(cfg.Transform).RejectionRate, perf.FPGABurstRNs)
		if err != nil {
			return nil, err
		}
		runtimes["FPGA"] = ft.Runtime

		for _, platform := range []string{"CPU", "GPU", "PHI", "FPGA"} {
			pw, err := DynamicPowerW(platform, cfg)
			if err != nil {
				return nil, err
			}
			tr, err := SynthesizeTrace(pw, runtimes[platform], 150*time.Second)
			if err != nil {
				return nil, err
			}
			e, err := tr.DynamicEnergyPerInvocation()
			if err != nil {
				return nil, err
			}
			out = append(out, Fig9Cell{
				Platform: platform, Config: cfg.Name,
				Runtime: runtimes[platform], EnergyJ: e,
			})
		}
	}
	return out, nil
}

// EfficiencyRatio returns E(platform)/E(FPGA) for a configuration in a
// Fig. 9 result set — the headline numbers of the paper's abstract
// (up to 9.5x/7.9x/4.1x under Config1, ≥~2.2x everywhere).
func EfficiencyRatio(cells []Fig9Cell, config, platform string) (float64, error) {
	var num, den float64
	for _, c := range cells {
		if c.Config != config {
			continue
		}
		switch c.Platform {
		case platform:
			num = c.EnergyJ
		case "FPGA":
			den = c.EnergyJ
		}
	}
	if num == 0 || den == 0 {
		return 0, fmt.Errorf("power: missing cells for %s/%s", config, platform)
	}
	return num / den, nil
}
