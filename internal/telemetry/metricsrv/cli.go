package metricsrv

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/decwi/decwi/internal/telemetry"
)

// Flags bundles the standard observability flags every decwi CLI
// exposes (-http, -http-linger). Register them with RegisterFlags
// before flag.Parse; the six binaries share this struct so their flag
// names, defaults and help text can never drift apart.
type Flags struct {
	// Addr is the -http listen address ("" disables the server).
	Addr string
	// Linger is -http-linger: how long the server outlives the run.
	Linger time.Duration
}

// RegisterFlags installs the shared observability flags on fs
// (flag.CommandLine in the CLIs) and returns the struct their parsed
// values land in.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Addr, "http", "", "serve live metrics on this address (e.g. :9090; \"\" disables)")
	fs.DurationVar(&f.Linger, "http-linger", 0, "keep the metrics server up this long after the run finishes")
	return f
}

// Recorder returns a fresh metrics-only recorder (ring capacity 0) when
// the server is enabled, nil otherwise — the create-iff--http convention
// every CLI used to hand-roll. CLIs that want event tracing too (a
// non-zero ring) build their own recorder and ignore this helper.
func (f *Flags) Recorder() *telemetry.Recorder {
	if f.Addr == "" {
		return nil
	}
	return telemetry.New(0)
}

// Start is StartForCLI on the parsed flag values.
func (f *Flags) Start(prog string, rec *telemetry.Recorder) (stop func() error, err error) {
	return StartForCLI(prog, f.Addr, f.Linger, rec)
}

// StartServer is Start exposing the underlying *Server, for CLIs that
// install hooks on it (SetHealth, SetSLO) after it is already
// listening. srv is nil when -http was not given (stop is then a
// no-op), so callers guard their hook wiring on it.
func (f *Flags) StartServer(prog string, rec *telemetry.Recorder) (srv *Server, stop func() error, err error) {
	return startForCLI(prog, f.Addr, f.Linger, rec)
}

// StartForCLI is the shared -http flag plumbing of the cmd/ binaries:
// when addr is non-empty it binds the observability server for rec,
// announces the resolved endpoint on stderr (":0" selects an ephemeral
// port, so the printed address is how a scraper finds the run), and
// returns a stop function for the end of the run. stop lingers for the
// given duration first — so a scrape race at the end of a short run
// (the check.sh smoke step) still lands — then shuts the server down
// gracefully and joins its goroutine; a run that exits through stop
// leaks nothing. When addr is empty, stop is a no-op and rec may be
// nil.
func StartForCLI(prog, addr string, linger time.Duration, rec *telemetry.Recorder) (stop func() error, err error) {
	_, stop, err = startForCLI(prog, addr, linger, rec)
	return stop, err
}

// startForCLI is the shared implementation behind StartForCLI and
// Flags.StartServer.
func startForCLI(prog, addr string, linger time.Duration, rec *telemetry.Recorder) (*Server, func() error, error) {
	if addr == "" {
		return nil, func() error { return nil }, nil
	}
	srv, err := New(rec)
	if err != nil {
		return nil, nil, err
	}
	bound, err := srv.Serve(addr)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "%s: metrics on http://%s/metrics (also /healthz /snapshot /debug/pprof)\n", prog, bound)
	return srv, func() error {
		if linger > 0 {
			time.Sleep(linger)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Close(ctx)
	}, nil
}
