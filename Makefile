# Tier-1 gate: every change must keep this green (see README.md
# "Testing" and ROADMAP.md). `make check` is what CI runs.

GO ?= go

.PHONY: check vet build test race bench bench-json bench-smoke bench-compare bench-compare-smoke bce-check metrics-smoke serve-smoke trace-overhead bench-serve bench-fastlane trace clean

check: vet build race bce-check bench-smoke bench-compare-smoke metrics-smoke serve-smoke trace-overhead

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Telemetry overhead gate: telemetry-off must stay within noise of the
# pre-telemetry engine (nil-receiver hooks only).
bench:
	$(GO) test -bench BenchmarkGamma -benchtime 1x -run '^$$' .

# Machine-readable throughput baseline (BENCH_8.json at the repo root):
# engine MB/s and ns/value for Config1-4 on both compute paths, plus the
# transport, parallel-scheduler and telemetry ablations.
bench-json:
	sh scripts/bench_json.sh

# Diff the committed baselines with per-benchmark % deltas
# (per-benchmark thresholds, default 5%).
bench-compare:
	sh scripts/bench_compare.sh BENCH_7.json BENCH_8.json

# The self-diff is deterministic and delta-free by construction, so the
# comparer itself can never silently rot.
bench-compare-smoke:
	sh scripts/bench_compare.sh BENCH_8.json BENCH_8.json

# Bounds-check-elimination gate: the marked kernel regions in the RNG
# packages must compile with zero IsInBounds/IsSliceInBounds checks
# (fresh GOCACHE, -gcflags=-d=ssa/check_bce).
bce-check:
	sh scripts/bce_check.sh

# One-iteration smoke run of the burst-transport, sharded-generation and
# compute-path benchmarks, so they can never silently rot.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkBatchedStream -benchtime 1x ./internal/hls
	$(GO) test -run '^$$' -bench BenchmarkGenerateParallel -benchtime 1x .
	$(GO) test -run '^$$' -bench BenchmarkBlockCompute -benchtime 1x .
	$(GO) test -run '^$$' -bench BenchmarkHistogramRecord -benchtime 1x ./internal/telemetry

# Live metrics smoke: scrape a running decwi-gammagen -http server and
# validate the Prometheus exposition with the in-repo checker.
metrics-smoke:
	sh scripts/metrics_smoke.sh

# Service smoke: boot decwi-served, run a replay-determinism check and a
# risk batch through decwi-loadgen (with the per-phase breakdown),
# validate the live metrics plane and the /debug/jobs trace surface,
# render a job trace with decwi-trace -job, require a clean SIGTERM
# drain, and prove /healthz degrades under an injected slow executor.
serve-smoke:
	sh scripts/serve_smoke.sh

# Tracing non-perturbation gate: cache-hot throughput with the flight
# recorder + SLO plane on must hold ≥ 0.90x the tracing-off run.
trace-overhead:
	sh scripts/trace_overhead.sh

# Service latency/throughput baseline (BENCH_6.json at the repo root):
# p50/p99 job latency and saturation throughput across concurrency levels.
bench-serve:
	sh scripts/bench_serve.sh

# Serve fast-lane baseline (BENCH_9.json at the repo root): cache-cold
# vs cache-hot vs dedup-storm at concurrency 16; fails if the hot path
# is less than 5x the cold jobs/s.
bench-fastlane:
	sh scripts/bench_serve.sh BENCH_9.json fastlane

# Smoke-test the tracing CLI (artifacts land in the working directory).
trace:
	$(GO) run ./cmd/decwi-trace -config 3

clean:
	rm -f decwi-trace.json
