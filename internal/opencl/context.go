package opencl

import (
	"fmt"
	"sync"
)

// Context is the cl_context analogue: it owns the devices it was created
// against, tracks the buffers and queues allocated through it, and
// releases them together. The experiment harness uses one context per
// host+accelerator combination of Section IV-A.
type Context struct {
	devices []*Device

	mu       sync.Mutex
	queues   []*CommandQueue
	buffers  []*Buffer
	released bool
}

// CreateContext builds a context over the given devices.
func CreateContext(devices ...*Device) (*Context, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("opencl: a context needs at least one device")
	}
	for i, d := range devices {
		if d == nil {
			return nil, fmt.Errorf("opencl: nil device %d", i)
		}
	}
	return &Context{devices: append([]*Device(nil), devices...)}, nil
}

// Devices returns the context's devices.
func (c *Context) Devices() []*Device { return append([]*Device(nil), c.devices...) }

// contains reports whether d belongs to the context.
func (c *Context) contains(d *Device) bool {
	for _, cd := range c.devices {
		if cd == d {
			return true
		}
	}
	return false
}

// CreateQueue builds an in-order command queue on one of the context's
// devices.
func (c *Context) CreateQueue(d *Device) (*CommandQueue, error) {
	if !c.contains(d) {
		return nil, fmt.Errorf("opencl: device %q not part of this context", d.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.released {
		return nil, fmt.Errorf("opencl: context already released")
	}
	q, err := NewCommandQueue(d)
	if err != nil {
		return nil, err
	}
	c.queues = append(c.queues, q)
	return q, nil
}

// CreateBuffer allocates a device buffer tracked by the context.
func (c *Context) CreateBuffer(name string, flags MemFlag, size int64) (*Buffer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.released {
		return nil, fmt.Errorf("opencl: context already released")
	}
	b, err := NewBuffer(name, flags, size)
	if err != nil {
		return nil, err
	}
	c.buffers = append(c.buffers, b)
	return b, nil
}

// Allocated returns the total bytes of live buffer allocations.
func (c *Context) Allocated() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, b := range c.buffers {
		n += b.Size()
	}
	return n
}

// Release drains and shuts down every queue created through the context
// and drops the buffer references. Idempotent.
func (c *Context) Release() error {
	c.mu.Lock()
	if c.released {
		c.mu.Unlock()
		return nil
	}
	c.released = true
	queues := c.queues
	c.queues = nil
	c.buffers = nil
	c.mu.Unlock()

	var firstErr error
	for _, q := range queues {
		if err := q.Release(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
