package slo

import (
	"sync"
	"testing"
	"time"
)

// tracker with a hand-advanced clock.
func newTestTracker(target float64, short, long time.Duration) (*Tracker, *time.Time) {
	now := time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)
	clock := &now
	t := New(Config{
		Name: "latency", Target: target,
		ShortWindow: short, LongWindow: long,
		now: func() time.Time { return *clock },
	})
	return t, clock
}

func TestSLOHealthyAtZeroTraffic(t *testing.T) {
	tr, _ := newTestTracker(0.99, time.Minute, 10*time.Minute)
	st := tr.Evaluate(0, 0)
	if st.Degraded || st.BurnShort != 0 || st.BurnLong != 0 {
		t.Fatalf("zero traffic not healthy: %+v", st)
	}
	st = tr.Evaluate(100, 0)
	if st.Degraded || st.BurnShort != 0 {
		t.Fatalf("all-good traffic not healthy: %+v", st)
	}
}

func TestSLODegradedNeedsBothWindows(t *testing.T) {
	tr, clock := newTestTracker(0.99, time.Minute, 10*time.Minute)

	// A long healthy history: 1000 good events over 10 minutes.
	var good int64
	for i := 0; i < 10; i++ {
		good += 100
		tr.Evaluate(good, 0)
		*clock = clock.Add(time.Minute)
	}

	// A burst of failures inside the short window burns the short
	// window hot, but the long window still includes the healthy
	// history — degradation requires the failure to persist.
	st := tr.Evaluate(good+10, 40)
	if st.BurnShort < 1 {
		t.Fatalf("short burn %.2f, want ≥ 1 after failure burst", st.BurnShort)
	}
	if st.BurnLong >= st.BurnShort {
		t.Fatalf("long burn %.2f should lag short %.2f", st.BurnLong, st.BurnShort)
	}

	// Keep failing for the whole long window: both windows now burn.
	bad := int64(40)
	for i := 0; i < 11; i++ {
		*clock = clock.Add(time.Minute)
		good += 10
		bad += 40
		st = tr.Evaluate(good, bad)
	}
	if !st.Degraded {
		t.Fatalf("sustained 80%% failure not degraded: %+v", st)
	}
	if st.Reason == "" {
		t.Fatal("degraded status carries no reason")
	}

	// Recovery: stop failing; once the windows roll past the incident
	// the tracker must report healthy again.
	for i := 0; i < 12; i++ {
		*clock = clock.Add(time.Minute)
		good += 100
		st = tr.Evaluate(good, bad)
	}
	if st.Degraded {
		t.Fatalf("recovered service still degraded: %+v", st)
	}
	if st.BurnShort != 0 {
		t.Fatalf("short burn %.2f after clean window, want 0", st.BurnShort)
	}
}

// TestSLOFirstEvaluateBurns: counts accumulated before the FIRST
// Evaluate call burn against the construction-time zero origin — a
// service failing from startup must degrade on its first probe, not
// use its own first (already-bad) sample as the delta baseline.
func TestSLOFirstEvaluateBurns(t *testing.T) {
	tr, clock := newTestTracker(0.99, time.Minute, 10*time.Minute)
	*clock = clock.Add(30 * time.Second)
	st := tr.Evaluate(0, 10)
	if st.BurnShort < 1 || st.BurnLong < 1 {
		t.Fatalf("first-probe burn %.2f/%.2f, want ≥ 1 on both windows", st.BurnShort, st.BurnLong)
	}
	if !st.Degraded {
		t.Fatalf("all-bad startup not degraded on first probe: %+v", st)
	}
}

func TestSLOBurnMath(t *testing.T) {
	// target 0.9 → budget 0.1. 50% bad = burn 5.0.
	tr, clock := newTestTracker(0.9, time.Minute, time.Minute)
	tr.Evaluate(0, 0)
	*clock = clock.Add(30 * time.Second)
	st := tr.Evaluate(50, 50)
	if st.BurnShort < 4.99 || st.BurnShort > 5.01 {
		t.Fatalf("burn %.3f, want 5.0", st.BurnShort)
	}
	if !st.Degraded {
		t.Fatalf("5x burn on both windows not degraded: %+v", st)
	}
}

func TestSLOSamplePruning(t *testing.T) {
	tr, clock := newTestTracker(0.99, time.Minute, 5*time.Minute)
	for i := 0; i < 1000; i++ {
		tr.Evaluate(int64(i), 0)
		*clock = clock.Add(time.Second)
	}
	tr.mu.Lock()
	n := len(tr.samples)
	tr.mu.Unlock()
	// 5-minute window at 1 sample/s: ~300 retained, never the full 1000.
	if n > 305 {
		t.Fatalf("retained %d samples, pruning not applied", n)
	}
}

func TestSLOCounterRegression(t *testing.T) {
	// A caller handing in decreasing counters (restart, bug) must get
	// clamped deltas, not negative burn or a panic.
	tr, clock := newTestTracker(0.99, time.Minute, time.Minute)
	tr.Evaluate(100, 10)
	*clock = clock.Add(10 * time.Second)
	st := tr.Evaluate(50, 5)
	if st.BurnShort != 0 && st.BurnShort < 0 {
		t.Fatalf("negative burn %.2f", st.BurnShort)
	}
}

func TestSLOPerfectTargetBudget(t *testing.T) {
	tr, clock := newTestTracker(1.0, time.Minute, time.Minute)
	// Target forced to 1.0 → default replaces 0 only; 1.0 stays. Any
	// bad event is an unbounded burn, reported as a large finite rate.
	tr.Evaluate(0, 0)
	*clock = clock.Add(time.Second)
	st := tr.Evaluate(10, 1)
	if st.BurnShort < 1e8 {
		t.Fatalf("burn %.2f for a zero-budget objective, want large", st.BurnShort)
	}
}

func TestSLONilTracker(t *testing.T) {
	var tr *Tracker
	st := tr.Evaluate(10, 10)
	if st.Degraded || st.Name != "" {
		t.Fatalf("nil tracker returned %+v", st)
	}
}

func TestSLOConcurrentEvaluate(t *testing.T) {
	tr := New(Config{Target: 0.99})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st := tr.Evaluate(int64(1000+i), int64(i%3))
				if st.BurnShort < 0 || st.BurnLong < 0 {
					t.Errorf("negative burn %+v", st)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
