// Package flight is the per-job distributed-tracing layer of the serve
// path: a bounded, always-on "flight recorder" of recent job timelines.
//
// Where internal/telemetry answers aggregate questions (p99 moved, the
// queue-wait histogram fattened), this package answers the per-request
// one: *why did this job take 80 ms*. Every submission owns a Trace — a
// tree of named spans covering admission → validation → quota → cache
// lookup → dedup decision → queue wait → engine run → digest, with the
// engine span linked down into the work-stealing scheduler's per-chunk
// execution — and the Recorder retains the last N traces in a ring plus
// a pinned FIFO of the ones worth keeping past the ring (slow or
// failed jobs), so the interesting timeline is still there when someone
// comes looking after the fact.
//
// The same non-perturbation contract as the rest of the telemetry
// stack applies: a nil *Recorder and a nil *Trace are the disabled
// implementation. Every method is nil-receiver safe and free of side
// effects on the nil path, so tracing-off code carries only a
// predictable-branch cost on the hot path.
//
// Trace identity is W3C-trace-context shaped: a submission may carry a
// `traceparent` header, whose 16-byte trace-id this package parses and
// adopts; otherwise a fresh random trace-id is minted at admission. The
// span tree itself stays process-local (there is no wire propagation of
// span ids yet — the multi-process tier will add that), but adopting
// the caller's trace-id means a client can grep one id across its own
// logs, the server's structured logs, and /debug/jobs.
package flight

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// SpanID names one span within one trace. 0 is "no span": the zero
// value parents a span at the root and is what nil-trace Begin returns,
// so disabled tracing threads zeros around harmlessly.
type SpanID int32

// Span is one timed operation in a trace. Times are microseconds
// relative to the trace start (so a whole trace is compact and
// offset-free); EndUS is -1 while the span is open.
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent"` // 0 = root-level
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"` // e.g. "hit", "coalesced onto j-00000007"
	Arg    int64  `json:"arg,omitempty"`    // span-defined quantity (bytes, chunk index, ...)

	StartUS int64 `json:"start_us"`
	EndUS   int64 `json:"end_us"` // -1 while open
}

// maxSpans caps one trace's span slice: a single job touching every
// engine chunk of a large run must not grow a timeline without bound.
// Beyond the cap, spans are counted (Dropped) instead of stored.
const maxSpans = 1024

// Trace is one job's timeline. All mutable state is guarded by mu;
// every method is nil-receiver safe (a nil *Trace is tracing-off).
type Trace struct {
	rec *Recorder // owning recorder (never nil on a non-nil trace)

	traceID string
	start   time.Time

	mu       sync.Mutex
	jobID    string
	tenant   string
	kind     string
	lane     string
	spans    []Span
	dropped  int
	state    string // "live" until Finish
	errMsg   string
	finished time.Time
	pinned   bool
}

// StateLive is the Trace state before Finish; Finish replaces it with a
// terminal state ("done", "failed", "cancelled", "rejected", ...).
const StateLive = "live"

// TraceID returns the W3C-shaped 32-hex-digit trace id ("" on nil).
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// SetJob attaches the job id (once minted) and indexes the trace under
// it, so GET /debug/jobs/{job-id} resolves as well as the trace id.
func (t *Trace) SetJob(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.jobID = id
	t.mu.Unlock()
	t.rec.index(id, t)
}

// SetTenant records the (post-validation, canonical) tenant label.
func (t *Trace) SetTenant(tenant string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tenant = tenant
	t.mu.Unlock()
}

// SetLane records which admission lane served the job
// ("cache-hit", "coalesced", "fast-path", "queued").
func (t *Trace) SetLane(lane string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.lane = lane
	t.mu.Unlock()
}

// rel converts an absolute time to trace-relative microseconds,
// clamping to 0 so a caller-measured timestamp fractionally before the
// trace start (clock granularity) cannot produce a negative offset.
func (t *Trace) rel(at time.Time) int64 {
	us := at.Sub(t.start).Microseconds()
	if us < 0 {
		us = 0
	}
	return us
}

// Begin opens a span under parent (0 = root) and returns its id. The
// caller closes it with End/EndDetail; spans left open are closed by
// Finish. On a nil trace Begin returns 0, which End ignores. Begin on a
// finished trace also returns 0: a terminal trace must never carry an
// open span (the serve layer hits this when a cancelled leader's trace
// outlives its shared engine run — externally-timed Add spans are still
// accepted, open ones are not).
func (t *Trace) Begin(name string, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	now := t.rec.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateLive {
		return 0
	}
	return t.addLocked(Span{
		Parent: parent, Name: name,
		StartUS: t.rel(now), EndUS: -1,
	})
}

// addLocked appends a span under the cap (caller holds t.mu) and
// assigns its id. IDs are 1-based and strictly ascending — the
// validation in CheckTraceJSON leans on that.
func (t *Trace) addLocked(s Span) SpanID {
	if len(t.spans) >= maxSpans {
		t.dropped++
		return 0
	}
	s.ID = SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, s)
	return s.ID
}

// End closes the span at the current time. Unknown or zero ids are
// ignored (they are what nil-trace Begins return).
func (t *Trace) End(id SpanID) { t.EndDetail(id, "", 0) }

// EndDetail closes the span and attaches a detail string and argument
// (e.g. "hit" + payload bytes on a cache-lookup span). Closing an
// already-closed span is a no-op.
func (t *Trace) EndDetail(id SpanID, detail string, arg int64) {
	if t == nil || id <= 0 {
		return
	}
	now := t.rec.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) > len(t.spans) {
		return
	}
	s := &t.spans[id-1]
	if s.EndUS >= 0 {
		return
	}
	s.EndUS = t.rel(now)
	if detail != "" {
		s.Detail = detail
	}
	if arg != 0 {
		s.Arg = arg
	}
}

// Add records an externally-timed closed span — the bridge for
// subsystems that already measure their own durations (the parallel
// scheduler's per-chunk wall times). start/end are absolute; end is
// clamped to start so rounding can never produce a negative duration.
func (t *Trace) Add(name string, parent SpanID, start, end time.Time, detail string, arg int64) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Span{
		Parent: parent, Name: name, Detail: detail, Arg: arg,
		StartUS: t.rel(start), EndUS: t.rel(end),
	}
	if s.EndUS < s.StartUS {
		s.EndUS = s.StartUS
	}
	return t.addLocked(s)
}

// Event records an instantaneous point (a zero-duration span).
func (t *Trace) Event(name string, parent SpanID, detail string) {
	if t == nil {
		return
	}
	now := t.rec.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	us := t.rel(now)
	t.addLocked(Span{Parent: parent, Name: name, Detail: detail, StartUS: us, EndUS: us})
}

// SpanCount returns stored + dropped spans (the serve layer's
// serve.trace.spans counter input).
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans) + t.dropped
}

// Finish seals the trace with a terminal state ("done", "failed",
// "cancelled", "rejected"). Any still-open span is closed at the finish
// time, so a terminal trace never carries an open span (CheckTraceJSON
// enforces exactly that). The recorder then decides pinning: failed
// traces and traces at or over the slow threshold survive ring
// eviction. Finishing twice is a no-op.
func (t *Trace) Finish(state, errMsg string) {
	if t == nil {
		return
	}
	now := t.rec.now()
	t.mu.Lock()
	if t.state != StateLive {
		t.mu.Unlock()
		return
	}
	t.state = state
	t.errMsg = errMsg
	t.finished = now
	endUS := t.rel(now)
	for i := range t.spans {
		if t.spans[i].EndUS < 0 {
			t.spans[i].EndUS = endUS
		}
	}
	dur := now.Sub(t.start)
	t.mu.Unlock()
	t.rec.noteFinish(t, state, dur)
}

// snapshot renders the trace as its JSON wire shape (t.mu held by
// caller-free path: takes the lock itself).
func (t *Trace) snapshot() TraceJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceJSON{
		TraceID:     t.traceID,
		JobID:       t.jobID,
		Tenant:      t.tenant,
		Kind:        t.kind,
		Lane:        t.lane,
		State:       t.state,
		Error:       t.errMsg,
		StartUnixUS: t.start.UnixMicro(),
		DurationUS:  -1,
		Dropped:     t.dropped,
		Pinned:      t.pinned,
		Spans:       append([]Span(nil), t.spans...),
	}
	if !t.finished.IsZero() {
		out.DurationUS = t.finished.Sub(t.start).Microseconds()
	}
	return out
}

// summary renders the trace's /debug/jobs list entry.
func (t *Trace) summary() TraceSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSummary{
		TraceID:     t.traceID,
		JobID:       t.jobID,
		Tenant:      t.tenant,
		Kind:        t.kind,
		Lane:        t.lane,
		State:       t.state,
		Error:       t.errMsg,
		StartUnixUS: t.start.UnixMicro(),
		DurationUS:  -1,
		Spans:       len(t.spans) + t.dropped,
		Pinned:      t.pinned,
	}
	if !t.finished.IsZero() {
		s.DurationUS = t.finished.Sub(t.start).Microseconds()
	}
	return s
}

// TraceJSON is the GET /debug/jobs/{id} body: one complete span tree.
type TraceJSON struct {
	TraceID string `json:"trace_id"`
	JobID   string `json:"job_id,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Kind    string `json:"kind,omitempty"`
	Lane    string `json:"lane,omitempty"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
	// StartUnixUS anchors the trace-relative span times on the wall
	// clock; DurationUS is -1 while the trace is live.
	StartUnixUS int64 `json:"start_unix_us"`
	DurationUS  int64 `json:"duration_us"`
	// Dropped counts spans beyond the per-trace cap (recorded but not
	// stored).
	Dropped int  `json:"dropped_spans,omitempty"`
	Pinned  bool `json:"pinned,omitempty"`

	Spans []Span `json:"spans"`
}

// TraceSummary is one GET /debug/jobs list entry.
type TraceSummary struct {
	TraceID     string `json:"trace_id"`
	JobID       string `json:"job_id,omitempty"`
	Tenant      string `json:"tenant,omitempty"`
	Kind        string `json:"kind,omitempty"`
	Lane        string `json:"lane,omitempty"`
	State       string `json:"state"`
	Error       string `json:"error,omitempty"`
	StartUnixUS int64  `json:"start_unix_us"`
	DurationUS  int64  `json:"duration_us"`
	Spans       int    `json:"spans"`
	Pinned      bool   `json:"pinned,omitempty"`
}

// JobsJSON is the GET /debug/jobs body: retention totals plus the
// retained traces, newest first.
type JobsJSON struct {
	// Recorded counts every trace ever started; Evicted counts the ones
	// retention has already discarded. Recorded − Evicted = len(Jobs).
	Recorded int64 `json:"recorded"`
	Evicted  int64 `json:"evicted"`
	// Pinned is how many of the retained traces are pinned (slow or
	// failed jobs held past ring eviction).
	Pinned int            `json:"pinned"`
	Jobs   []TraceSummary `json:"jobs"`
}

// Stats is the recorder's occupancy snapshot (the serve.trace.* gauge
// inputs).
type Stats struct {
	Recorded int64
	Evicted  int64
	Retained int
	Pinned   int
}

// Recorder retains recent traces: a FIFO ring of the last RingCap
// traces (registered at Start, so live jobs are visible in /debug/jobs
// while they run) plus a FIFO of up to PinCap pinned traces — ones that
// finished failed or at/over the slow threshold — which survive ring
// eviction. A nil *Recorder is the disabled implementation: Start
// returns a nil *Trace and every accessor returns zero values.
type Recorder struct {
	slow time.Duration
	ring int
	pin  int
	now  func() time.Time // injectable clock (package tests)

	mu       sync.Mutex
	order    []*Trace // ring FIFO, oldest first
	pinned   []*Trace // pinned FIFO, oldest first
	inRing   map[*Trace]bool
	inPinned map[*Trace]bool
	byID     map[string]*Trace // trace id and job id → trace
	recorded int64
	evicted  int64
}

// Defaults for New's zero arguments.
const (
	DefaultRingCap       = 256
	DefaultPinCap        = 64
	DefaultSlowThreshold = 250 * time.Millisecond
)

// New builds a flight recorder retaining the last ringCap traces plus
// up to pinCap pinned (failed or ≥ slow) traces. Zero arguments select
// the defaults. Callers that want tracing off pass around a nil
// *Recorder instead — every method supports it.
func New(ringCap, pinCap int, slow time.Duration) *Recorder {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	if pinCap <= 0 {
		pinCap = DefaultPinCap
	}
	if slow <= 0 {
		slow = DefaultSlowThreshold
	}
	return &Recorder{
		slow: slow, ring: ringCap, pin: pinCap, now: time.Now,
		inRing:   map[*Trace]bool{},
		inPinned: map[*Trace]bool{},
		byID:     map[string]*Trace{},
	}
}

// SlowThreshold reports the pin threshold (0 on nil).
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.slow
}

// Start begins a trace. traceID is adopted when it is a well-formed
// 32-hex-digit W3C trace id (use TraceIDFrom on a raw traceparent
// header); anything else is replaced by a freshly minted id. The trace
// enters the ring immediately — a job is visible in /debug/jobs while
// it runs, not only after it finishes.
func (r *Recorder) Start(traceID, kind string) *Trace {
	if r == nil {
		return nil
	}
	if !validTraceID(traceID) {
		traceID = NewTraceID()
	}
	t := &Trace{
		rec:     r,
		traceID: traceID,
		start:   r.now(),
		kind:    kind,
		state:   StateLive,
	}
	r.mu.Lock()
	r.recorded++
	r.order = append(r.order, t)
	r.inRing[t] = true
	r.byID[traceID] = t
	for len(r.order) > r.ring {
		old := r.order[0]
		r.order = r.order[1:]
		delete(r.inRing, old)
		r.dropIfUnreferencedLocked(old)
	}
	r.mu.Unlock()
	return t
}

// index registers an additional lookup key (the job id) for t.
func (r *Recorder) index(key string, t *Trace) {
	if r == nil || key == "" {
		return
	}
	r.mu.Lock()
	// Only index while the trace is still retained — SetJob racing an
	// eviction must not resurrect a dropped trace in the id map.
	if r.inRing[t] || r.inPinned[t] {
		r.byID[key] = t
	}
	r.mu.Unlock()
}

// noteFinish applies the pin policy when a trace seals: failed traces
// and traces at/over the slow threshold are pinned, surviving ring
// eviction until the pinned FIFO itself overflows.
func (r *Recorder) noteFinish(t *Trace, state string, dur time.Duration) {
	if r == nil {
		return
	}
	pin := state == "failed" || dur >= r.slow
	if !pin {
		return
	}
	r.mu.Lock()
	// Pin only traces still retained: a trace that outlived the ring
	// before finishing (possible under churn) is already gone, and
	// re-adding it would corrupt the eviction bookkeeping.
	if r.inRing[t] && !r.inPinned[t] {
		t.mu.Lock()
		t.pinned = true
		t.mu.Unlock()
		r.pinned = append(r.pinned, t)
		r.inPinned[t] = true
		for len(r.pinned) > r.pin {
			old := r.pinned[0]
			r.pinned = r.pinned[1:]
			delete(r.inPinned, old)
			old.mu.Lock()
			old.pinned = false
			old.mu.Unlock()
			r.dropIfUnreferencedLocked(old)
		}
	}
	r.mu.Unlock()
}

// dropIfUnreferencedLocked removes t from the id map once neither the
// ring nor the pinned FIFO holds it (caller holds r.mu).
func (r *Recorder) dropIfUnreferencedLocked(t *Trace) {
	if r.inRing[t] || r.inPinned[t] {
		return
	}
	r.evicted++
	if r.byID[t.traceID] == t {
		delete(r.byID, t.traceID)
	}
	t.mu.Lock()
	jobID := t.jobID
	t.mu.Unlock()
	if jobID != "" && r.byID[jobID] == t {
		delete(r.byID, jobID)
	}
}

// Get returns the span tree for a job id or trace id.
func (r *Recorder) Get(id string) (TraceJSON, bool) {
	if r == nil {
		return TraceJSON{}, false
	}
	r.mu.Lock()
	t := r.byID[id]
	r.mu.Unlock()
	if t == nil {
		return TraceJSON{}, false
	}
	return t.snapshot(), true
}

// Jobs returns the /debug/jobs listing: every retained trace (ring ∪
// pinned), newest first, with retention totals.
func (r *Recorder) Jobs() JobsJSON {
	if r == nil {
		return JobsJSON{Jobs: []TraceSummary{}}
	}
	r.mu.Lock()
	traces := make([]*Trace, 0, len(r.order)+len(r.pinned))
	// Pinned-but-rotated-out traces first (they are the oldest), then
	// the ring in order; dedup the overlap (a pinned trace still in the
	// ring appears once).
	for _, t := range r.pinned {
		if !r.inRing[t] {
			traces = append(traces, t)
		}
	}
	traces = append(traces, r.order...)
	out := JobsJSON{
		Recorded: r.recorded,
		Evicted:  r.evicted,
		Pinned:   len(r.pinned),
		Jobs:     make([]TraceSummary, 0, len(traces)),
	}
	// Newest first: reverse iteration over oldest-first accumulation.
	// Summaries are built while r.mu is still held (lock order r.mu →
	// t.mu, same as noteFinish) so the header totals and the per-trace
	// pin flags are one consistent snapshot — a pin landing between the
	// two would otherwise make the listing self-inconsistent.
	for i := len(traces) - 1; i >= 0; i-- {
		out.Jobs = append(out.Jobs, traces[i].summary())
	}
	r.mu.Unlock()
	return out
}

// Stats snapshots the retention totals (gauge/counter feed).
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	retained := len(r.order)
	for _, t := range r.pinned {
		if !r.inRing[t] {
			retained++
		}
	}
	return Stats{
		Recorded: r.recorded,
		Evicted:  r.evicted,
		Retained: retained,
		Pinned:   len(r.pinned),
	}
}

// NewTraceID mints a random 16-byte trace id in lowercase hex — the
// W3C trace-context format. crypto/rand never fails on the supported
// platforms; a short read would fall back to a fixed id rather than
// panic on a diagnostics path.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000000000000000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// validTraceID reports whether s is a well-formed W3C trace id:
// 32 lowercase hex digits, not all zero.
func validTraceID(s string) bool {
	if len(s) != 32 {
		return false
	}
	zero := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// TraceIDFrom extracts the trace id from a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). It
// returns "" when the header is absent or malformed — the caller then
// mints a fresh id. Only version 00 is parsed; an unknown version is
// treated as malformed (the spec says to accept future versions, but a
// diagnostics plane prefers a fresh id over adopting bytes it cannot
// vouch for).
func TraceIDFrom(traceparent string) string {
	// 2 (version) + 1 + 32 (trace id) + 1 + 16 (parent id) + 1 + 2 (flags)
	if len(traceparent) != 55 {
		return ""
	}
	if traceparent[0] != '0' || traceparent[1] != '0' ||
		traceparent[2] != '-' || traceparent[35] != '-' || traceparent[52] != '-' {
		return ""
	}
	id := traceparent[3:35]
	if !validTraceID(id) {
		return ""
	}
	for i := 36; i < 52; i++ {
		if !isHex(traceparent[i]) {
			return ""
		}
	}
	for i := 53; i < 55; i++ {
		if !isHex(traceparent[i]) {
			return ""
		}
	}
	return id
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f'
}
