// Memory-tuning example: the device-memory side of the design.
//
//   - the Fig. 7 experiment: transfers-only runtime as a function of the
//     burst length and the number of transfer engines, showing where the
//     512-bit channel saturates;
//   - the Section III-E buffer-combining decision: host-level (N read
//     requests) vs device-level (1 read request) through the OpenCL host
//     runtime, on identical data.
package main

import (
	"fmt"
	"log"

	decwi "github.com/decwi/decwi"
)

func main() {
	// --- Fig. 7: burst-length sweep -------------------------------------
	rows, err := decwi.Fig7([]int{16, 64, 256, 1024}, []int{1, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("transfers-only runtime for the 2.5 GB paper workload (Fig. 7)")
	fmt.Printf("  %-10s %-8s %-12s %s\n", "burst RNs", "engines", "runtime", "bandwidth")
	for _, r := range rows {
		fmt.Printf("  %-10d %-8d %-12v %.2f GB/s\n", r.BurstRNs, r.Engines, r.Runtime.Round(1e6), r.Bandwidth)
	}
	fmt.Println()
	fmt.Println("small bursts pay the per-burst overhead; one engine cannot hide its")
	fmt.Println("turnaround gap; the controller ceiling (~3.9 GB/s) binds at the top.")
	fmt.Println()

	// --- Section III-E: buffer combining ---------------------------------
	s, err := decwi.NewSession("FPGA")
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	opts := decwi.GenerateOptions{Scenarios: 32768, Sectors: 2, Seed: 9}
	devLevel, err := s.EnqueueGamma(decwi.Config4, opts, false)
	if err != nil {
		log.Fatal(err)
	}
	hostLevel, err := s.EnqueueGamma(decwi.Config4, opts, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("buffer combining (Section III-E), identical kernel and data:")
	fmt.Printf("  device-level: %d read request,  read time %v\n", devLevel.ReadRequests, devLevel.ReadTime)
	fmt.Printf("  host-level:   %d read requests, read time %v\n", hostLevel.ReadRequests, hostLevel.ReadTime)

	same := len(devLevel.Host) == len(hostLevel.Host)
	for i := range devLevel.Host {
		if devLevel.Host[i] != hostLevel.Host[i] {
			same = false
			break
		}
	}
	fmt.Printf("  results identical: %v\n", same)
	fmt.Println("  -> the paper selects device-level combining: one buffer, one read,")
	fmt.Println("     <1% device-side cost (each work-item offsets by its wid).")
}
