// Package serve is the gamma-as-a-service layer: a long-lived job
// server that multiplexes many concurrent generation and risk requests
// onto the work-stealing parallel engine.
//
// The package splits into three pieces:
//
//   - the job model (this file): a JobSpec is the replay tuple — every
//     byte of a generate job's payload is a pure function of
//     (Config, Seed, workload options), so re-submitting a spec returns
//     bitwise-identical bytes, and those bytes equal sequential
//     decwi.Generate output (the engine's sequential-equivalence
//     tentpole extends across the network boundary);
//   - the Scheduler (scheduler.go): bounded admission queue, a fixed
//     executor pool, per-tenant token-bucket quotas (quota.go),
//     cancellation/timeout propagation into the engine's context
//     plumbing, and graceful drain (stop admitting, finish every
//     admitted job, join every goroutine);
//   - the HTTP Server (server.go): POST /v1/generate, POST /v1/risk,
//     GET /v1/jobs/{id} (long-poll with ?wait=), GET /v1/jobs/{id}/result,
//     DELETE /v1/jobs/{id}, with 429 + Retry-After under admission
//     pressure and 503 while draining.
//
// Telemetry rides on the same live metrics plane as the engine: queue
// and service histograms, depth/in-flight gauges, and per-tenant
// admitted/rejected/cancelled counters, all scrapeable from one
// metricsrv instance.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"regexp"
	"time"

	decwi "github.com/decwi/decwi"
)

// JobKind names the two workloads the server runs.
type JobKind string

const (
	// KindGenerate produces raw gamma variates: the payload is the
	// engine's device-layout []float32 encoded little-endian — exactly
	// the bytes decwi-gammagen writes for the same options.
	KindGenerate JobKind = "generate"
	// KindRisk runs the CreditRisk+ Monte-Carlo on a uniform portfolio:
	// the payload is the decwi.RiskReport as JSON.
	KindRisk JobKind = "risk"
)

// JobState is the job lifecycle. queued → running → one terminal state.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// tenantRE constrains tenant names to the charset the metric instance
// label allows, so per-tenant counters can never break the repo-wide
// naming lint.
var tenantRE = regexp.MustCompile(`^[a-z0-9-]{1,32}$`)

// DefaultTenant is assumed when a spec carries no tenant.
const DefaultTenant = "anon"

// JobSpec is a client job submission — and, for generate jobs, the
// deterministic replay tuple: two specs with equal workload fields
// yield bitwise-identical payloads, regardless of scheduling fields,
// server load, or goroutine interleaving.
type JobSpec struct {
	// Kind is implied by the submission endpoint; it is stored so the
	// job record is self-describing.
	Kind JobKind `json:"kind,omitempty"`
	// Config selects the Table I kernel configuration (1-4, or 5 for
	// the ziggurat extension).
	Config int `json:"config"`
	// Seed is the master seed (0 selects the library default, 1).
	Seed uint64 `json:"seed,omitempty"`
	// Scenarios is the number of gamma values per sector (generate) or
	// Monte-Carlo scenarios (risk). Required.
	Scenarios int64 `json:"scenarios"`
	// Sectors defaults to 1.
	Sectors int `json:"sectors,omitempty"`
	// Variance is the sector variance (0 selects the library default,
	// 1.39); Variances overrides it per sector.
	Variance  float64   `json:"variance,omitempty"`
	Variances []float64 `json:"variances,omitempty"`
	// WorkItems overrides the decoupled pipeline count (0 = the
	// configuration's place-and-route outcome).
	WorkItems int `json:"work_items,omitempty"`
	// StreamOffset fast-forwards every work-item's twister streams by
	// this many state words before generation (an O(log n) jump-ahead
	// seek). Part of the replay tuple: (seed, stream_offset) names the
	// stream window, so a checkpointed workload resumes by resubmitting
	// the same spec with the saved offset. Generate jobs only.
	StreamOffset uint64 `json:"stream_offset,omitempty"`

	// Scheduling knobs, forwarded to decwi.ParallelOptions. The server
	// is strict where the library clamps: a remote spec asking for more
	// shards or bigger chunks than there are work-items is rejected with
	// 400 instead of silently normalized, so the stored replay tuple is
	// always canonical. Workers is required (≥ 1): admission control
	// accounts per-job host parallelism explicitly.
	Shards         int `json:"shards,omitempty"`
	Workers        int `json:"workers"`
	ChunkWorkItems int `json:"chunk_work_items,omitempty"`

	// Tenant scopes quota accounting and the per-tenant counters
	// (lowercase [a-z0-9-], ≤ 32 chars; empty selects "anon").
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMS bounds job execution (0 = the server default). The
	// deadline propagates into the engine via GenerateParallelContext.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Risk-only portfolio shape (KindRisk): a uniform portfolio of
	// Obligors loans at probability-of-default PD and unit Exposure,
	// affiliated round-robin to Sectors. BandUnit > 0 adds the exact
	// Panjer recursion cross-check.
	Obligors int     `json:"obligors,omitempty"`
	PD       float64 `json:"pd,omitempty"`
	Exposure float64 `json:"exposure,omitempty"`
	BandUnit float64 `json:"band_unit,omitempty"`
}

// Limits are the server-side admission bounds a spec is validated
// against. The zero value of any field selects its default.
type Limits struct {
	// MaxScenarios caps Scenarios·Sectors per job (default 1<<26 —
	// a 256 MiB float32 payload).
	MaxScenarios int64
	// MaxJobWorkers caps the per-job engine worker count (default 16).
	MaxJobWorkers int
}

func (l Limits) withDefaults() Limits {
	if l.MaxScenarios == 0 {
		l.MaxScenarios = 1 << 26
	}
	if l.MaxJobWorkers == 0 {
		l.MaxJobWorkers = 16
	}
	return l
}

// Validate checks the spec against the limits and normalizes the
// defaultable fields (tenant, sectors, risk portfolio shape). It is the
// single gate between the network and the engine: everything it accepts
// must run without panicking, everything it rejects maps to HTTP 400.
func (spec *JobSpec) Validate(l Limits) error {
	l = l.withDefaults()
	switch spec.Kind {
	case KindGenerate, KindRisk:
	default:
		return fmt.Errorf("unknown job kind %q", spec.Kind)
	}
	info, err := decwi.ConfigID(spec.Config).Describe()
	if err != nil {
		return fmt.Errorf("config %d: not a known configuration", spec.Config)
	}
	if spec.Scenarios < 1 {
		return fmt.Errorf("scenarios %d must be ≥ 1", spec.Scenarios)
	}
	if spec.Sectors == 0 {
		spec.Sectors = 1
	}
	if spec.Sectors < 1 {
		return fmt.Errorf("sectors %d must be ≥ 1", spec.Sectors)
	}
	// Overflow-safe form of scenarios·sectors > MaxScenarios: both
	// factors are ≥ 1 here, so the product is over the cap exactly when
	// scenarios exceeds the per-sector budget — and the division can
	// never wrap the way the product can.
	if spec.Scenarios > l.MaxScenarios/int64(spec.Sectors) {
		return fmt.Errorf("scenarios·sectors %d·%d exceeds the server cap %d", spec.Scenarios, spec.Sectors, l.MaxScenarios)
	}
	if spec.Variance < 0 || math.IsNaN(spec.Variance) || math.IsInf(spec.Variance, 0) {
		return fmt.Errorf("variance %g must be a finite value ≥ 0 (0 selects the default)", spec.Variance)
	}
	for i, v := range spec.Variances {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("variances[%d] = %g must be a finite value > 0", i, v)
		}
	}
	if spec.Variances != nil && len(spec.Variances) != spec.Sectors {
		return fmt.Errorf("variances has %d entries for %d sectors", len(spec.Variances), spec.Sectors)
	}
	if spec.WorkItems < 0 {
		return fmt.Errorf("work_items %d must be ≥ 0 (0 selects the place-and-route outcome)", spec.WorkItems)
	}
	wi := spec.WorkItems
	if wi == 0 {
		wi = info.FPGAWorkItems
	}
	if spec.Workers < 1 {
		return fmt.Errorf("workers %d must be ≥ 1 (the server accounts per-job parallelism explicitly; it does not default it)", spec.Workers)
	}
	if spec.Workers > l.MaxJobWorkers {
		return fmt.Errorf("workers %d exceeds the per-job cap %d", spec.Workers, l.MaxJobWorkers)
	}
	if spec.Shards < 0 {
		return fmt.Errorf("shards %d must be ≥ 0 (0 selects an even split)", spec.Shards)
	}
	if spec.Shards > wi {
		return fmt.Errorf("shards %d exceeds the %d work-items of config %d (the server does not silently clamp remote specs)", spec.Shards, wi, spec.Config)
	}
	if spec.ChunkWorkItems < 0 {
		return fmt.Errorf("chunk_work_items %d must be ≥ 0 (0 selects an even split)", spec.ChunkWorkItems)
	}
	if spec.ChunkWorkItems > wi {
		return fmt.Errorf("chunk_work_items %d exceeds the %d work-items of config %d", spec.ChunkWorkItems, wi, spec.Config)
	}
	if spec.Seed == 0 {
		// Canonicalize the replay tuple: the library would default the
		// seed anyway, and the stored spec must name the value actually
		// used.
		spec.Seed = 1
	}
	if spec.Tenant == "" {
		spec.Tenant = DefaultTenant
	}
	if !tenantRE.MatchString(spec.Tenant) {
		return fmt.Errorf("tenant %q must match %s", spec.Tenant, tenantRE)
	}
	if spec.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms %d must be ≥ 0", spec.TimeoutMS)
	}
	if spec.Kind == KindRisk {
		if spec.Scenarios > math.MaxInt32 {
			return fmt.Errorf("risk scenarios %d exceeds %d", spec.Scenarios, math.MaxInt32)
		}
		if spec.Obligors == 0 {
			spec.Obligors = 100
		}
		if spec.Obligors < 1 {
			return fmt.Errorf("obligors %d must be ≥ 1", spec.Obligors)
		}
		if spec.PD == 0 {
			spec.PD = 0.02
		}
		if !(spec.PD > 0 && spec.PD < 1) {
			return fmt.Errorf("pd %g must lie in (0, 1)", spec.PD)
		}
		if spec.Exposure == 0 {
			spec.Exposure = 100
		}
		if !(spec.Exposure > 0) || math.IsInf(spec.Exposure, 0) {
			return fmt.Errorf("exposure %g must be a finite value > 0", spec.Exposure)
		}
		if spec.BandUnit < 0 || math.IsInf(spec.BandUnit, 0) {
			return fmt.Errorf("band_unit %g must be a finite value ≥ 0", spec.BandUnit)
		}
		// Risk runs on a scalar variance: the MC layer draws its sector
		// gammas from one uniform portfolio definition.
		if spec.Variances != nil {
			return fmt.Errorf("risk jobs take a scalar variance, not per-sector variances")
		}
		if spec.StreamOffset != 0 {
			return fmt.Errorf("risk jobs do not take a stream_offset (the loss pipeline owns its stream positions)")
		}
	}
	return nil
}

// generateOptions maps a validated generate spec onto the facade's
// parallel options. The mapping is total: every workload field of the
// replay tuple is forwarded, nothing else is invented.
func (spec *JobSpec) generateOptions() decwi.ParallelOptions {
	return decwi.ParallelOptions{
		GenerateOptions: decwi.GenerateOptions{
			Scenarios: spec.Scenarios,
			Sectors:   spec.Sectors,
			Variance:  spec.Variance,
			Variances: spec.Variances,
			WorkItems:    spec.WorkItems,
			Seed:         spec.Seed,
			StreamOffset: spec.StreamOffset,
		},
		Shards:         spec.Shards,
		Workers:        spec.Workers,
		ChunkWorkItems: spec.ChunkWorkItems,
	}
}

// JobStatus is the externally visible job record (the GET /v1/jobs/{id}
// body).
type JobStatus struct {
	ID     string   `json:"id"`
	Kind   JobKind  `json:"kind"`
	State  JobState `json:"state"`
	Tenant string   `json:"tenant"`
	Config int      `json:"config"`
	Seed   uint64   `json:"seed"`
	Error  string   `json:"error,omitempty"`
	// Bytes and SHA256 describe the result payload (terminal done jobs
	// only). The digest lets a replay check compare two submissions
	// without downloading either payload.
	Bytes  int    `json:"bytes,omitempty"`
	SHA256 string `json:"sha256,omitempty"`
	// QueueWaitUS and ServiceUS are the same quantities the
	// serve.queue-wait-us / serve.service-us histograms aggregate.
	QueueWaitUS int64 `json:"queue_wait_us"`
	ServiceUS   int64 `json:"service_us,omitempty"`
	// Generate-only scheduler echo.
	RejectionRate float64 `json:"rejection_rate,omitempty"`
	Chunks        int     `json:"chunks,omitempty"`
	Steals        int     `json:"steals,omitempty"`
	// Risk-only report.
	Risk *decwi.RiskReport `json:"risk,omitempty"`
}

// encodeFloat32LE renders values as the wire/file format shared with
// decwi-gammagen: little-endian IEEE-754 float32, device layout. The
// replay-determinism contract is stated over exactly these bytes.
func encodeFloat32LE(values []float32) []byte {
	out := make([]byte, 4*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// digest is the hex SHA-256 the status JSON and the X-Decwi-Sha256
// response header carry.
func digest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// retryAfter is the hint returned with 429/503 responses.
const retryAfter = 1 * time.Second
